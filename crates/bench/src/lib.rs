//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every figure and finding of the paper has a binary in `src/bin/` that prints
//! the corresponding table (text + CSV); the functions here build those tables so
//! the Criterion benches and the binaries measure exactly the same thing.
//! See `DESIGN.md` in this crate's directory (§3) for the experiment index
//! and `EXPERIMENTS.md` next to it for recorded results.
//!
//! Every sweep here executes through [`SweepRunner`]: the binaries share a
//! uniform `--threads N` flag (or the `PDFWS_THREADS` environment variable)
//! next to `--quick`, and parallel runs are bit-identical to sequential ones.
//!
//! Every binary also accepts the spec flags: repeatable `--workload <spec>`
//! (replace the binary's default workload axis with any registered workload
//! specs, e.g. `--workload mergesort:n=4096 --workload spmv`), `--memsys
//! <spec>` (select the memory-system model for every simulated cell, e.g.
//! `--memsys legacy` or `--memsys bus:dram:banks=32`), `--cache <spec>`
//! (select the cache simulation mode — `exact`, `sampled:rate=N` or
//! `analytic`), and `--list` (print all five registries' grammars — every
//! scheduler policy, workload, memory-system model, cache mode and arrival
//! process with its typed parameters — and exit).
//!
//! Output flows through one shared emission path ([`emit_tables`] /
//! [`emit_figures`], built on the `pdfws-report` renderers): the default is
//! aligned text tables, `--csv` switches every binary to CSV blocks, and
//! `--json` to self-describing JSONL rows (`job_stream --json` emits the
//! per-job records instead).  `--help` prints the uniform flag table.

use pdfws_cmp_model::default_config;
use pdfws_core::prelude::*;
use pdfws_metrics::{Series, Table};
use pdfws_report::Figure;
use pdfws_schedulers::{simulate_traced, SimOptions};
use pdfws_serve::ArrivalRegistry;
use pdfws_stream::{run_stream_sim_traced, JobMix, StreamConfig};
use pdfws_trace::{chrome_trace_json, timeline_table, EventTrace, TraceTrack};

/// The core counts on the x-axis of Figure 1.
pub fn paper_core_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// Default problem sizes used by the experiment binaries.  They are chosen so the
/// dataset exceeds the shared L2 of the larger default configurations (the regime
/// the paper studies); `--quick` in the binaries divides them down for smoke runs.
pub mod sizes {
    /// Keys sorted by the Figure 1 merge sort.
    pub const MERGESORT_KEYS: u64 = 1 << 20;
    /// Matrix dimension for matmul / LU.
    pub const MATRIX_N: u64 = 512;
    /// Rows for SpMV.
    pub const SPMV_ROWS: u64 = 1 << 17;
    /// Build-side tuples for the hash join.
    pub const HASHJOIN_BUILD: u64 = 1 << 16;
    /// Elements for the scan.
    pub const SCAN_N: u64 = 1 << 21;
    /// Items for the compute-bound kernel.
    pub const COMPUTE_ITEMS: u64 = 1 << 17;
}

pub mod tuner;

/// Worker threads for the sweep runner: `--threads N` (or `--threads=N`) on
/// the command line, else the `PDFWS_THREADS` environment variable, else every
/// available core.  This is the uniform threading knob of the experiment
/// binaries, sitting next to `--quick`.
pub fn threads_arg() -> usize {
    // Parse (and possibly warn) once per process: the bins call this for
    // their banner and every sweep helper calls it again via `runner()`.
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(threads_arg_uncached)
}

fn threads_arg_uncached() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--threads" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match value.as_deref().map(pdfws_core::parse_threads) {
            Some(Some(n)) => return n,
            _ => {
                // A typo must not silently saturate every core.
                eprintln!(
                    "warning: ignoring {} --threads value; falling back to {}/auto",
                    match value.as_deref() {
                        Some(v) => format!("malformed '{v}'"),
                        None => "missing".to_string(),
                    },
                    pdfws_core::THREADS_ENV
                );
            }
        }
    }
    // Same guard for the env knob: a typo'd PDFWS_THREADS must not silently
    // saturate every core either (the library's `threads_from_env` stays
    // silent by design; the CLI harness is where diagnostics belong).
    if let Ok(v) = std::env::var(pdfws_core::THREADS_ENV) {
        if pdfws_core::parse_threads(&v).is_none() {
            eprintln!(
                "warning: ignoring malformed {}='{v}'; using all available cores",
                pdfws_core::THREADS_ENV
            );
        }
    }
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    pdfws_core::threads_from_env(default)
}

/// The worker pool every bench binary sweeps on (sized by [`threads_arg`]).
pub fn runner() -> SweepRunner {
    SweepRunner::new(threads_arg())
}

/// The uniform flags every experiment binary accepts, as (flag, help) pairs —
/// the rows [`maybe_help`] prints and `DESIGN.md`'s flag table documents.
pub const UNIFORM_FLAGS: &[(&str, &str)] = &[
    ("--quick", "shrink problem sizes to smoke-test scale"),
    (
        "--threads N",
        "sweep worker threads (default: PDFWS_THREADS, else all cores); output is bit-identical for every N",
    ),
    (
        "--workload <spec>",
        "(repeatable) replace the default workload axis with registered workload specs",
    ),
    (
        "--memsys <spec>",
        "memory-system model for every simulated cell (e.g. 'legacy' or 'bus:dram:banks=32'; default: the component bus+DRAM model)",
    ),
    (
        "--cache <spec>",
        "cache simulation mode for every cell ('exact' (default), 'sampled:rate=N', 'analytic')",
    ),
    ("--csv", "print CSV blocks instead of aligned text tables"),
    ("--json", "print self-describing JSONL rows instead of tables"),
    (
        "--trace <out.json>",
        "export a Perfetto/Chrome trace-event timeline of one representative cell per scheduler spec (open in ui.perfetto.dev)",
    ),
    (
        "--trace-summary",
        "print binned timeline tables (busy fraction, steals, ready depth) plus the sweep worker-utilization profile",
    ),
    (
        "--list",
        "print the spec grammars of all five registries (schedulers, workloads, memory-system models, cache modes, arrival processes) and exit",
    ),
    ("--help", "print this flag table and exit"),
];

/// If the binary was invoked with `--help` (or `-h`), print the description
/// and the uniform flag table — plus any binary-specific `extra` flags — and
/// exit.  Call this before doing any work.
pub fn maybe_help(bin: &str, about: &str, extra: &[(&str, &str)]) {
    if !std::env::args().any(|a| a == "--help" || a == "-h") {
        return;
    }
    println!("{bin} — {about}\n");
    println!("Usage: cargo run --release -p pdfws-bench --bin {bin} [-- FLAGS]\n");
    println!("Flags:");
    let width = UNIFORM_FLAGS
        .iter()
        .chain(extra)
        .map(|(f, _)| f.len())
        .max()
        .unwrap_or(0);
    for (flag, help) in extra.iter().chain(UNIFORM_FLAGS) {
        println!("  {flag:<width$}  {help}");
    }
    std::process::exit(0);
}

/// If the binary was invoked with `--list`, print all five registries' spec
/// grammars — every scheduler policy, workload, memory-system model, cache
/// mode and arrival process, with their typed parameters — and exit.  Call
/// this before doing any work.
pub fn maybe_list() {
    if std::env::args().any(|a| a == "--list") {
        println!(
            "Scheduler specs (policy:key=value,...):\n{}",
            Registry::global().help()
        );
        println!(
            "Workload specs (name:key=value,...):\n{}",
            WorkloadRegistry::global().help()
        );
        println!(
            "Memory-system specs (model:key=value,...):\n{}",
            MemSysRegistry::global().help()
        );
        println!(
            "Cache-mode specs (mode:key=value,...):\n{}",
            CacheModeRegistry::global().help()
        );
        println!(
            "Arrival specs (process:key=value,...):\n{}",
            ArrivalRegistry::global().help()
        );
        std::process::exit(0);
    }
}

/// The memory-system model selected on the command line: `--memsys <spec>` /
/// `--memsys=<spec>`, validated against the memsys registry.  `None` when the
/// flag was not given — cells then run the configuration's own model (the
/// component bus+DRAM system).  A malformed or unknown spec aborts with the
/// registry's error message.
pub fn memsys_spec_arg() -> Option<MemSysSpec> {
    static SPEC: std::sync::OnceLock<Option<MemSysSpec>> = std::sync::OnceLock::new();
    SPEC.get_or_init(memsys_spec_arg_uncached).clone()
}

fn memsys_spec_arg_uncached() -> Option<MemSysSpec> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--memsys" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--memsys=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let Some(raw) = value else {
            eprintln!("error: --memsys needs a spec argument (try --list)");
            std::process::exit(2);
        };
        match raw.parse::<MemSysSpec>() {
            Ok(spec) => return Some(spec),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    None
}

/// The cache simulation mode selected on the command line: `--cache <spec>` /
/// `--cache=<spec>`, validated against the cache-mode registry.  Defaults to
/// `exact` (the bit-exact per-access path) when the flag was not given.  A
/// malformed or unknown spec aborts with the registry's error message.
pub fn cache_mode_arg() -> CacheModeSpec {
    static SPEC: std::sync::OnceLock<CacheModeSpec> = std::sync::OnceLock::new();
    SPEC.get_or_init(cache_mode_arg_uncached).clone()
}

fn cache_mode_arg_uncached() -> CacheModeSpec {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--cache" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--cache=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let Some(raw) = value else {
            eprintln!("error: --cache needs a mode argument (try --list)");
            std::process::exit(2);
        };
        match raw.parse::<CacheModeSpec>() {
            Ok(spec) => return spec,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    CacheModeSpec::exact()
}

/// Apply the `--memsys` and `--cache` selections (if any) to a sweep grid.
pub fn grid_with_memsys(grid: SweepGrid) -> SweepGrid {
    let grid = grid.cache(cache_mode_arg());
    match memsys_spec_arg() {
        Some(spec) => grid.memsys(spec),
        None => grid,
    }
}

/// Apply the `--memsys` and `--cache` selections (if any) to an experiment
/// builder.
pub fn experiment_with_memsys(experiment: Experiment) -> Experiment {
    let experiment = experiment.cache(cache_mode_arg());
    match memsys_spec_arg() {
        Some(spec) => experiment.memsys(spec),
        None => experiment,
    }
}

/// Apply the `--memsys` and `--cache` selections (if any) to a
/// stream-experiment builder.
pub fn stream_with_memsys(experiment: StreamExperiment) -> StreamExperiment {
    let experiment = experiment.cache(cache_mode_arg());
    match memsys_spec_arg() {
        Some(spec) => experiment.memsys(spec),
        None => experiment,
    }
}

/// Parse every repeatable `--workload <spec>` / `--workload=<spec>` flag into
/// validated specs (no DAGs are built).  A malformed or unknown spec aborts
/// with the registry's error message (which lists what would have been
/// accepted).
pub fn workload_spec_args() -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--workload" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--workload=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let Some(raw) = value else {
            eprintln!("error: --workload needs a spec argument (try --list)");
            std::process::exit(2);
        };
        match raw.parse::<WorkloadSpec>() {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    specs
}

/// The binary's workload axis: the `--workload` specs when any were given,
/// instantiated through the registry, else `defaults()`.  Defaults are built
/// lazily so an overridden run never pays for the (possibly paper-scale)
/// default DAGs.
pub fn workloads_or(defaults: impl FnOnce() -> Vec<WorkloadInstance>) -> Vec<WorkloadInstance> {
    let specs = workload_spec_args();
    if specs.is_empty() {
        defaults()
    } else {
        specs.iter().map(WorkloadInstance::from_spec).collect()
    }
}

/// How a binary renders its tables, selected by the uniform `--csv` /
/// `--json` flags (default: aligned text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Aligned, human-readable text tables (the default).
    Text,
    /// CSV blocks, each preceded by a `# figure: <id>` comment line.
    Csv,
    /// Self-describing JSONL rows (one object per table row, tagged with the
    /// figure id).
    Json,
}

/// The output mode selected on the command line.  `--csv` and `--json`
/// together abort: the modes are exclusive.
pub fn output_mode() -> OutputMode {
    let csv = std::env::args().any(|a| a == "--csv");
    let json = std::env::args().any(|a| a == "--json");
    match (csv, json) {
        (true, true) => {
            eprintln!("error: --csv and --json are mutually exclusive");
            std::process::exit(2);
        }
        (true, false) => OutputMode::Csv,
        (false, true) => OutputMode::Json,
        (false, false) => OutputMode::Text,
    }
}

/// Print figures in the selected [`output_mode`] — the single emission path
/// of the experiment binaries, built on the `pdfws-report` renderers.
pub fn emit_figures(figures: &[Figure]) {
    emit_figures_as(output_mode(), figures);
}

/// [`emit_figures`] with an explicit mode (testable without process args).
pub fn emit_figures_as(mode: OutputMode, figures: &[Figure]) {
    for figure in figures {
        match mode {
            OutputMode::Text => println!("{}", figure.table.to_text()),
            OutputMode::Csv => print!("# figure: {}\n{}\n", figure.id, figure.to_csv()),
            OutputMode::Json => print!("{}", figure.to_jsonl()),
        }
    }
}

/// Wrap tables as figures (id derived from each title) and emit them in the
/// selected output mode.
pub fn emit_tables(tables: &[&Table]) {
    let figures: Vec<Figure> = tables
        .iter()
        .map(|&t| Figure::from_table(t.clone()))
        .collect();
    emit_figures(&figures);
}

/// True when the selected output mode is the human-readable text default —
/// the binaries gate their prose summary lines on this, so `--csv` / `--json`
/// stdout stays machine-parseable.
pub fn text_output() -> bool {
    output_mode() == OutputMode::Text
}

/// Run one (workloads × cores × specs) grid on the shared runner and return
/// one report per workload.  Every workload's DAG is built once and shared by
/// all of its cells; results are deterministic for any `--threads` value.
pub fn sweep_reports(
    workloads: &[WorkloadInstance],
    core_counts: &[usize],
    specs: &[SchedulerSpec],
) -> Vec<ExperimentReport> {
    let grid = grid_with_memsys(
        SweepGrid::new()
            .workloads(workloads)
            .cores(core_counts)
            .specs(specs),
    );
    runner()
        .run(&grid)
        .expect("default configurations exist for the requested core counts")
        .into_reports()
}

/// Run one (cores × specs) sweep and return the report, for deriving several
/// tables from a single set of simulations.
pub fn sweep_report(
    workload: &WorkloadInstance,
    core_counts: &[usize],
    specs: &[SchedulerSpec],
) -> ExperimentReport {
    sweep_reports(std::slice::from_ref(workload), core_counts, specs).swap_remove(0)
}

/// The two Figure-1 panels (L2 misses per 1000 instructions, speedup over the
/// one-core run) for PDF and WS, derived from an existing report that must
/// contain those cells.  Thin veneer over the report's own table emission
/// ([`ExperimentReport::mpki_table`] / [`ExperimentReport::speedup_table`]).
pub fn figure1_tables_from(report: &ExperimentReport, core_counts: &[usize]) -> (Table, Table) {
    let pair = SchedulerSpec::paper_pair();
    (
        report.mpki_table(core_counts, &pair),
        report.speedup_table(core_counts, &pair),
    )
}

/// Run one workload across the paper's core counts under PDF and WS and return
/// the two Figure-1 panels: (L2 misses per 1000 instructions, speedup over the
/// one-core run).
pub fn figure1_tables(workload: &WorkloadInstance, core_counts: &[usize]) -> (Table, Table) {
    let report = sweep_report(workload, core_counts, &SchedulerSpec::paper_pair());
    figure1_tables_from(&report, core_counts)
}

/// Per-spec scheduler counters derived from an existing report: one series per
/// requested scheduler spec carrying its `migrations` counter (work migrations
/// — steal events for the deque policies, cross-core placements for `static`;
/// see `SchedulerPolicy::migrations`).  Surfaces the counter for *every* spec,
/// not just the classic `ws` column, so parameterized variants are comparable.
pub fn migrations_table_from(
    report: &ExperimentReport,
    core_counts: &[usize],
    specs: &[SchedulerSpec],
) -> Table {
    report.migrations_table(core_counts, specs)
}

/// [`migrations_table_from`] plus the sweep that feeds it.
pub fn migrations_table(
    workload: &WorkloadInstance,
    core_counts: &[usize],
    specs: &[SchedulerSpec],
) -> Table {
    let report = sweep_report(workload, core_counts, specs);
    migrations_table_from(&report, core_counts, specs)
}

/// One row of the per-class comparison tables: the PDF-vs-WS comparison for one
/// workload at one core count.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Canonical workload spec string.
    pub workload: String,
    /// Application class.
    pub class: String,
    /// Core count.
    pub cores: usize,
    /// WS makespan / PDF makespan (> 1 means PDF faster).
    pub relative_speedup: f64,
    /// Percent reduction in off-chip traffic under PDF.
    pub traffic_reduction_percent: f64,
    /// PDF L2 misses per 1000 instructions.
    pub pdf_mpki: f64,
    /// WS L2 misses per 1000 instructions.
    pub ws_mpki: f64,
}

/// Compare PDF against WS for several workloads at the given core counts, as
/// one grid: every (workload × cores × spec) cell is an independent runner
/// cell, so the whole comparison parallelizes across workloads too.
pub fn compare_pdf_ws_all(
    workloads: &[WorkloadInstance],
    core_counts: &[usize],
) -> Vec<ComparisonRow> {
    let reports = sweep_reports(workloads, core_counts, &SchedulerSpec::paper_pair());
    let mut rows = Vec::with_capacity(workloads.len() * core_counts.len());
    for (workload, report) in workloads.iter().zip(&reports) {
        for &cores in core_counts {
            let pdf = report.find(cores, &SchedulerSpec::pdf()).unwrap();
            let ws = report.find(cores, &SchedulerSpec::ws()).unwrap();
            rows.push(ComparisonRow {
                workload: workload.spec.canonical(),
                class: workload.class.to_string(),
                cores,
                relative_speedup: report.pdf_over_ws_speedup(cores).unwrap(),
                traffic_reduction_percent: report.pdf_traffic_reduction_percent(cores).unwrap(),
                pdf_mpki: pdf.metrics.l2_mpki(),
                ws_mpki: ws.metrics.l2_mpki(),
            });
        }
    }
    rows
}

/// Compare PDF against WS for one workload at the given core counts.
pub fn compare_pdf_ws(workload: &WorkloadInstance, core_counts: &[usize]) -> Vec<ComparisonRow> {
    compare_pdf_ws_all(std::slice::from_ref(workload), core_counts)
}

/// Render comparison rows as a table over "workload@cores".
pub fn comparison_table(title: &str, rows: &[ComparisonRow]) -> Table {
    let x: Vec<String> = rows
        .iter()
        .map(|r| format!("{}@{}", r.workload, r.cores))
        .collect();
    let mut t = Table::new(title, "workload@cores", x);
    t.push_series(Series::new(
        "rel_speedup(pdf/ws)",
        rows.iter().map(|r| r.relative_speedup).collect(),
    ));
    t.push_series(Series::new(
        "traffic_reduction_%",
        rows.iter().map(|r| r.traffic_reduction_percent).collect(),
    ));
    t.push_series(Series::new(
        "pdf_mpki",
        rows.iter().map(|r| r.pdf_mpki).collect(),
    ));
    t.push_series(Series::new(
        "ws_mpki",
        rows.iter().map(|r| r.ws_mpki).collect(),
    ));
    t
}

/// The default-configuration table (the paper's "CMP configurations studied").
pub fn config_table(core_counts: &[usize]) -> Table {
    let x: Vec<String> = core_counts.iter().map(|c| c.to_string()).collect();
    let mut t = Table::new(
        "Default CMP configurations (240 mm² die, 90nm-32nm)",
        "cores",
        x,
    );
    let configs: Vec<_> = core_counts
        .iter()
        .map(|&c| default_config(c).expect("study range"))
        .collect();
    t.push_series(Series::new(
        "feature_nm",
        configs.iter().map(|c| c.node.feature_nm()).collect(),
    ));
    t.push_series(Series::new(
        "l2_mib",
        configs
            .iter()
            .map(|c| c.l2.capacity_bytes as f64 / (1024.0 * 1024.0))
            .collect(),
    ));
    t.push_series(Series::new(
        "l2_latency_cyc",
        configs.iter().map(|c| c.l2.latency_cycles as f64).collect(),
    ));
    t.push_series(Series::new(
        "mem_latency_cyc",
        configs
            .iter()
            .map(|c| c.memory_latency_cycles as f64)
            .collect(),
    ));
    t.push_series(Series::new(
        "offchip_B_per_cyc",
        configs.iter().map(|c| c.offchip_bytes_per_cycle).collect(),
    ));
    t
}

/// The tracing selections of one invocation, parsed from the uniform
/// `--trace <out.json>` / `--trace=<out.json>` and `--trace-summary` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceArgs {
    /// Where to write the Perfetto/Chrome trace-event JSON, if requested.
    pub path: Option<std::path::PathBuf>,
    /// Whether to print binned timeline summary tables and the sweep
    /// worker-utilization profile.
    pub summary: bool,
}

impl TraceArgs {
    /// Whether any tracing output was requested at all.
    pub fn enabled(&self) -> bool {
        self.path.is_some() || self.summary
    }
}

/// Parse the uniform tracing flags.  A `--trace` with no path aborts rather
/// than silently tracing nowhere.
pub fn trace_args() -> TraceArgs {
    let mut parsed = TraceArgs::default();
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--trace-summary" {
            parsed.summary = true;
            continue;
        }
        let value = if arg == "--trace" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match value {
            Some(path) => parsed.path = Some(path.into()),
            None => {
                eprintln!("error: --trace needs an output path (e.g. --trace target/trace.json)");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Honor the uniform `--trace` / `--trace-summary` flags for a sweep binary:
/// re-simulate one representative (workload × `cores` × spec) cell per
/// scheduler spec with tracing on, then export a Perfetto JSON (one process
/// track per spec, one thread per core) and/or print binned timeline tables
/// plus the worker pool's wall-clock profile.
///
/// The traced cells run on the shared [`runner`] pool, and every cell's event
/// stream is deterministic — the exported JSON is byte-identical for every
/// `--threads` value.  (The `--trace-summary` *profile* table is wall-clock
/// and host-dependent by design; it is printed, never written to the trace.)
///
/// No-op when neither flag was given, so the binaries can call this
/// unconditionally after their sweep.
pub fn emit_trace(workload: &WorkloadInstance, cores: usize, specs: &[SchedulerSpec]) {
    emit_trace_as(trace_args(), workload, cores, specs);
}

/// [`emit_trace`] with explicit selections (testable without process args).
pub fn emit_trace_as(
    args: TraceArgs,
    workload: &WorkloadInstance,
    cores: usize,
    specs: &[SchedulerSpec],
) {
    if !args.enabled() {
        return;
    }
    let mut config = default_config(cores).expect("default configuration exists for traced cell");
    // The traced cell must run under the same memory-system model as the
    // sweep it represents.
    if let Some(spec) = memsys_spec_arg() {
        config.memsys = spec.memsys_params();
        config
            .validate()
            .expect("validated memsys spec stays valid");
    }
    // ... and under the same cache mode.
    let options = SimOptions {
        cache_mode: cache_mode_arg(),
        ..SimOptions::default()
    };
    let (cells, profile) = runner().run_cells_profiled(specs.len(), |i| {
        simulate_traced(&workload.dag, &config, &specs[i], &options)
    });

    if let Some(path) = &args.path {
        let tracks: Vec<TraceTrack> = specs
            .iter()
            .zip(&cells)
            .enumerate()
            .map(|(i, (spec, (_, events)))| {
                TraceTrack::new(
                    (i + 1) as u64,
                    format!("{spec} · {} @ {cores} cores", workload.spec.canonical()),
                    cores,
                    events.clone(),
                )
            })
            .collect();
        let json = chrome_trace_json(&tracks);
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "# wrote {} ({} bytes) — open in ui.perfetto.dev",
                path.display(),
                json.len()
            ),
            Err(e) => {
                eprintln!("error: cannot write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if args.summary {
        let tables: Vec<Table> = specs
            .iter()
            .zip(&cells)
            .map(|(spec, (_, events))| {
                timeline_table(
                    &format!(
                        "{}: timeline under {spec} @ {cores} cores",
                        workload.spec.canonical()
                    ),
                    events,
                    cores,
                    TRACE_SUMMARY_BINS,
                )
            })
            .chain(std::iter::once(profile.to_table()))
            .collect();
        let refs: Vec<&Table> = tables.iter().collect();
        emit_tables(&refs);
    }
}

/// Honor the uniform `--trace` / `--trace-summary` flags for a job-stream
/// binary: re-serve one representative (mix × scheduler) cell of the stream on
/// the simulated backend with tracing on.  Each scheduler gets one process
/// track whose async job slices span admit → complete (with a dispatch
/// instant at the first quantum grant) and whose `outstanding_jobs` counter
/// tracks co-residency — the stream-tier analogue of [`emit_trace`].
///
/// No-op when neither flag was given.
pub fn emit_stream_trace(mix: &JobMix, jobs: usize, cfg: &StreamConfig, specs: &[SchedulerSpec]) {
    emit_stream_trace_as(trace_args(), mix, jobs, cfg, specs);
}

/// [`emit_stream_trace`] with explicit selections (testable without process
/// args).
pub fn emit_stream_trace_as(
    args: TraceArgs,
    mix: &JobMix,
    jobs: usize,
    cfg: &StreamConfig,
    specs: &[SchedulerSpec],
) {
    if !args.enabled() {
        return;
    }
    // The traced stream must serve under the same memory-system model and
    // cache mode as the sweep it represents.
    let mut cfg = cfg.clone();
    if let Some(spec) = memsys_spec_arg() {
        cfg.memsys = Some(spec.memsys_params());
    }
    cfg.sim_options.cache_mode = cache_mode_arg();
    let cells: Vec<Vec<pdfws_trace::TraceEvent>> = specs
        .iter()
        .map(|spec| {
            let mut cell_cfg = cfg.clone();
            cell_cfg.scheduler = spec.clone();
            let mut trace = EventTrace::new();
            run_stream_sim_traced(mix, jobs, &cell_cfg, &mut trace)
                .expect("traced stream cell runs");
            trace.into_events()
        })
        .collect();

    if let Some(path) = &args.path {
        let tracks: Vec<TraceTrack> = specs
            .iter()
            .zip(&cells)
            .enumerate()
            .map(|(i, (spec, events))| {
                TraceTrack::new(
                    (i + 1) as u64,
                    format!("{spec} · stream {} @ {} cores", mix.name, cfg.cores),
                    cfg.cores,
                    events.clone(),
                )
            })
            .collect();
        let json = chrome_trace_json(&tracks);
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "# wrote {} ({} bytes) — open in ui.perfetto.dev",
                path.display(),
                json.len()
            ),
            Err(e) => {
                eprintln!("error: cannot write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if args.summary {
        let tables: Vec<Table> = specs
            .iter()
            .zip(&cells)
            .map(|(spec, events)| {
                timeline_table(
                    &format!(
                        "stream {}: timeline under {spec} @ {} cores",
                        mix.name, cfg.cores
                    ),
                    events,
                    cfg.cores,
                    TRACE_SUMMARY_BINS,
                )
            })
            .collect();
        let refs: Vec<&Table> = tables.iter().collect();
        emit_tables(&refs);
    }
}

/// Bins of the `--trace-summary` timeline tables.
pub const TRACE_SUMMARY_BINS: usize = 24;

/// Returns true when the binary was invoked with `--quick` (smaller problem
/// sizes, for smoke-testing the harness).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Divide a problem size down in quick mode.
pub fn scaled(size: u64, quick: bool) -> u64 {
    if quick {
        (size / 16).max(1024)
    } else {
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdfws_workloads::{MergeSort, ParallelScan};

    #[test]
    fn figure1_tables_have_two_series_each() {
        let (mpki, speedup) = figure1_tables(&MergeSort::small().into_instance(), &[1, 2]);
        assert_eq!(mpki.series.len(), 2);
        assert_eq!(speedup.series.len(), 2);
        assert_eq!(mpki.rows(), 2);
        assert!(mpki.to_csv().starts_with("cores,pdf,ws"));
    }

    #[test]
    fn comparison_rows_cover_requested_cores() {
        let rows = compare_pdf_ws(&ParallelScan::small().into_instance(), &[2, 4]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cores, 2);
        assert_eq!(rows[1].cores, 4);
        let t = comparison_table("test", &rows);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.series.len(), 4);
    }

    #[test]
    fn config_table_covers_the_paper_sweep() {
        let t = config_table(&paper_core_counts());
        assert_eq!(t.rows(), 6);
        assert_eq!(t.series.len(), 5);
    }

    #[test]
    fn scaled_respects_quick_mode() {
        assert_eq!(scaled(1 << 20, false), 1 << 20);
        assert_eq!(scaled(1 << 20, true), 1 << 16);
        assert_eq!(scaled(100, true), 1024);
    }
}
