//! Criterion bench: cost of the tracing layer on the simulation hot path.
//!
//! Three modes of the same engine run:
//!
//! * `off` — no sink attached (the default every sweep runs with);
//! * `null_sink` — a [`NullSink`] attached, so every emit point fires but the
//!   events are discarded;
//! * `event_trace` — the buffering [`EventTrace`] path `--trace` uses.
//!
//! Besides the Criterion numbers, this bench *asserts* the observability
//! budget: attaching a `NullSink` may cost at most 2 % of wall clock over the
//! untraced engine (min-of-N, which is robust to scheduler noise).  Smoke runs
//! (`cargo bench -- --test`) skip the assertion — single unwarmed iterations
//! are pure noise.
//!
//! [`NullSink`]: pdfws_trace::NullSink
//! [`EventTrace`]: pdfws_trace::EventTrace

use criterion::{criterion_group, criterion_main, Criterion};
use pdfws_cmp_model::{default_config, CmpConfig};
use pdfws_schedulers::{
    make_policy, simulate, simulate_traced, SchedulerSpec, SimEngine, SimOptions,
};
use pdfws_task_dag::TaskDag;
use pdfws_trace::NullSink;
use pdfws_workloads::{SyntheticTree, Workload};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The workload every mode simulates: the same synthetic tree the
/// `simulator_throughput` bench tracks, so the two benches share a baseline.
fn tree_dag() -> TaskDag {
    SyntheticTree {
        depth: 6,
        fanout: 2,
        leaf_instructions: 2_000,
        leaf_private_bytes: 32 * 1024,
        shared_bytes: 256 * 1024,
        shared_fraction: 0.5,
        passes: 2,
    }
    .build_dag()
}

fn run_off(dag: &TaskDag, cfg: &CmpConfig, spec: &SchedulerSpec, options: &SimOptions) -> u64 {
    simulate(dag, cfg, spec, options).cycles
}

fn run_null(dag: &TaskDag, cfg: &CmpConfig, spec: &SchedulerSpec, options: &SimOptions) -> u64 {
    let policy = make_policy(spec, cfg.cores);
    let mut engine = SimEngine::new(dag, cfg, policy, options.clone());
    engine.set_trace_sink(Box::new(NullSink));
    engine.run().cycles
}

fn run_event(dag: &TaskDag, cfg: &CmpConfig, spec: &SchedulerSpec, options: &SimOptions) -> u64 {
    simulate_traced(dag, cfg, spec, options).0.cycles
}

/// Minimum wall clock over `n` calls — the estimator the overhead assertion
/// uses (the minimum discards scheduler preemptions and cache warm-up, which
/// only ever inflate a sample).
fn min_wall(n: usize, mut f: impl FnMut() -> u64) -> Duration {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .min()
        .expect("n > 0")
}

fn bench_trace_overhead(c: &mut Criterion) {
    let dag = tree_dag();
    let cfg = default_config(8).expect("default configuration");
    let spec = SchedulerSpec::pdf();
    let options = SimOptions::default();

    let mut group = c.benchmark_group("trace_overhead");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("off", |b| {
        b.iter(|| black_box(run_off(&dag, &cfg, &spec, &options)))
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| black_box(run_null(&dag, &cfg, &spec, &options)))
    });
    group.bench_function("event_trace", |b| {
        b.iter(|| black_box(run_event(&dag, &cfg, &spec, &options)))
    });
    group.finish();

    // The budget assertion.  `--test` smoke runs measure nothing meaningful,
    // so they only check that all three modes execute.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let rounds = 15;
    // Warm both paths once before timing.
    black_box(run_off(&dag, &cfg, &spec, &options));
    black_box(run_null(&dag, &cfg, &spec, &options));
    let off = min_wall(rounds, || run_off(&dag, &cfg, &spec, &options));
    let null = min_wall(rounds, || run_null(&dag, &cfg, &spec, &options));
    let ratio = null.as_secs_f64() / off.as_secs_f64();
    eprintln!("# trace overhead: off {off:?} vs null sink {null:?} ({ratio:.4}x)");
    assert!(
        ratio <= 1.02,
        "attaching a NullSink cost {:.2} % over the untraced engine (budget: 2 %)",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
