//! Criterion bench B-runtime: overheads of the real-thread runtimes.
//!
//! Compares the work-stealing pool against the PDF pool (whose ready queue is a
//! centralized priority queue) on pure spawn/join trees, a parallel map-reduce and
//! a parallel merge sort, plus the sequential baseline.  On a machine with few
//! cores the interesting output is the per-spawn overhead gap between the two
//! policies, which is the practical cost PDF pays for its cache benefits.

use criterion::{criterion_group, criterion_main, Criterion};
use pdfws_runtime::{PdfPool, WsPool};
use pdfws_workloads::threaded::{parallel_map_reduce, parallel_merge_sort, spawn_tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bench_spawn_tree(c: &mut Criterion) {
    let ws = WsPool::new(pool_threads()).unwrap();
    let pdf = PdfPool::new(pool_threads()).unwrap();
    let mut group = c.benchmark_group("spawn_join_tree_depth10");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("ws", |b| b.iter(|| black_box(spawn_tree(&ws, 10))));
    group.bench_function("pdf", |b| b.iter(|| black_box(spawn_tree(&pdf, 10))));
    group.finish();
}

fn bench_map_reduce(c: &mut Criterion) {
    let ws = WsPool::new(pool_threads()).unwrap();
    let pdf = PdfPool::new(pool_threads()).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u64> = (0..1 << 18).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("map_reduce_256k");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                data.iter()
                    .map(|&x| x.wrapping_mul(2654435761))
                    .fold(0u64, u64::wrapping_add),
            )
        })
    });
    group.bench_function("ws", |b| {
        b.iter(|| {
            black_box(parallel_map_reduce(&ws, &data, 4096, &|x| {
                x.wrapping_mul(2654435761)
            }))
        })
    });
    group.bench_function("pdf", |b| {
        b.iter(|| {
            black_box(parallel_map_reduce(&pdf, &data, 4096, &|x| {
                x.wrapping_mul(2654435761)
            }))
        })
    });
    group.finish();
}

fn bench_merge_sort(c: &mut Criterion) {
    let ws = WsPool::new(pool_threads()).unwrap();
    let pdf = PdfPool::new(pool_threads()).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<u64> = (0..1 << 16).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("merge_sort_64k");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            black_box(v.len())
        })
    });
    group.bench_function("ws", |b| {
        b.iter(|| {
            let mut v = data.clone();
            parallel_merge_sort(&ws, &mut v, 4096);
            black_box(v.len())
        })
    });
    group.bench_function("pdf", |b| {
        b.iter(|| {
            let mut v = data.clone();
            parallel_merge_sort(&pdf, &mut v, 4096);
            black_box(v.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spawn_tree,
    bench_map_reduce,
    bench_merge_sort
);
criterion_main!(benches);
