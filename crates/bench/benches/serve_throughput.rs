//! Criterion bench: serving-tier throughput — jobs/s through the calibrated
//! fluid loop (admission + DRR dispatch + shedding) vs the plain `job_stream`
//! per-quantum simulation path.
//!
//! Both paths run under `cache=analytic` so the contrast isolates the tier
//! itself: the serve path pays a one-off calibration (one engine run per job
//! shape) and then prices every further job in O(events), while the stream
//! path simulates every quantum of every job.  The serve path therefore
//! serves far more jobs per second — this bench tracks that gap per PR
//! (recorded in `EXPERIMENTS.md` and, with `--json`, in `BENCH_<n>.json`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdfws_schedulers::{CacheModeSpec, SchedulerSpec};
use pdfws_serve::{run_serve, ServeConfig};
use pdfws_stream::{run_stream_sim, JobMix, StreamConfig};
use std::hint::black_box;

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    // The serving tier: 2000 jobs through admission + dispatch + the fluid
    // GPS loop (calibration happens inside every iteration, so this is the
    // worst case — sustained runs amortise one calibration across millions
    // of jobs).
    let serve_jobs = 2_000;
    let mut cfg = ServeConfig::new(8, SchedulerSpec::pdf());
    cfg.jobs = serve_jobs;
    cfg.autoscale = None;
    cfg.sim_options.cache_mode = CacheModeSpec::analytic();
    group.throughput(Throughput::Elements(serve_jobs as u64));
    group.bench_function("serve_2000_jobs_analytic", |b| {
        b.iter(|| black_box(run_serve(&cfg).expect("serve run").completed))
    });

    // The plain job-stream path: every quantum of every job simulated.  Far
    // fewer jobs fit a bench iteration, hence the per-element throughput
    // units make the two comparable.
    let stream_jobs = 20;
    let mix = JobMix::class_a();
    let mut scfg = StreamConfig::new(8, SchedulerSpec::pdf());
    scfg.sim_options.cache_mode = CacheModeSpec::analytic();
    group.throughput(Throughput::Elements(stream_jobs as u64));
    group.bench_function("job_stream_20_jobs_analytic", |b| {
        b.iter(|| {
            black_box(
                run_stream_sim(&mix, stream_jobs, &scfg)
                    .expect("stream run")
                    .records
                    .len(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
