//! Criterion bench for the Figure-1 pipeline: simulating parallel merge sort under
//! PDF and WS across core counts.  The measured quantity is harness run time (the
//! paper's metrics themselves are printed by the `fig1_mergesort` binary); keeping
//! it under Criterion catches performance regressions in the simulator that would
//! make the paper-scale experiments impractical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdfws_cmp_model::default_config;
use pdfws_schedulers::{simulate, SchedulerSpec, SimOptions};
use pdfws_workloads::{MergeSort, Workload};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_mergesort_sim");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    // A reduced instance so each iteration stays around tens of milliseconds; the
    // full-size figure is produced by the fig1_mergesort binary.
    let dag = MergeSort::new(1 << 14).build_dag();
    for &cores in &[1usize, 8, 32] {
        let cfg = default_config(cores).expect("default configuration");
        for spec in SchedulerSpec::paper_pair() {
            group.bench_with_input(BenchmarkId::new(spec.canonical(), cores), &cores, |b, _| {
                b.iter(|| {
                    let result = simulate(black_box(&dag), &cfg, &spec, &SimOptions::default());
                    black_box(result.l2_mpki())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
