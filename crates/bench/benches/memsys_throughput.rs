//! Criterion bench: throughput of the component memory-system substrate.
//!
//! Tracks (1) how many transactions per second the bus + DRAM-controller
//! model sustains on its own, and (2) what the component model costs the
//! execution engine relative to the legacy serializing-channel formula.  The
//! memory system sits on every simulated L2 miss, so a regression here slows
//! every paper-scale experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdfws_cmp_model::{default_config, MemSysParams};
use pdfws_memsys::MemSystem;
use pdfws_schedulers::{simulate, SchedulerSpec, SimOptions};
use pdfws_workloads::{SyntheticTree, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_transact_throughput(c: &mut Criterion) {
    let cfg = default_config(8).expect("default configuration");
    let resolved = MemSysParams::bus_dram().resolve(
        cfg.offchip_bytes_per_cycle,
        cfg.memory_latency_cycles,
        cfg.l2.line_bytes,
    );
    // A mix of streaming and scattered traffic from 8 requesters, issue times
    // loosely increasing like real engine traffic.
    let mut rng = StdRng::seed_from_u64(7);
    let mut at = 0u64;
    let txs: Vec<(usize, u64, u64)> = (0..100_000)
        .map(|i| {
            at += rng.gen_range(0..40);
            let block = if i % 4 == 0 {
                rng.gen_range(0..1u64 << 20)
            } else {
                (i as u64) * 3
            };
            (i % 8, block, at)
        })
        .collect();
    let mut group = c.benchmark_group("memsys");
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("transact_100k", |b| {
        b.iter(|| {
            let mut mem = MemSystem::new(&resolved);
            let mut total = 0u64;
            for &(core, block, at) in &txs {
                total += mem.transact(core, block, 64, at).total_cycles;
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_engine_under_each_model(c: &mut Criterion) {
    let workload = SyntheticTree {
        depth: 6,
        fanout: 2,
        leaf_instructions: 2_000,
        leaf_private_bytes: 32 * 1024,
        shared_bytes: 256 * 1024,
        shared_fraction: 0.5,
        passes: 2,
    };
    let dag = workload.build_dag();
    let refs = dag.analyze().memory_accesses;
    let bus_cfg = default_config(8).expect("default configuration");
    let mut legacy_cfg = bus_cfg;
    legacy_cfg.memsys = MemSysParams::legacy();
    legacy_cfg
        .validate()
        .expect("legacy configuration is valid");

    let mut group = c.benchmark_group("memsys_engine");
    group.throughput(Throughput::Elements(refs));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let spec = SchedulerSpec::pdf();
    for (name, cfg) in [("bus", &bus_cfg), ("legacy", &legacy_cfg)] {
        group.bench_function(format!("synthetic_tree_pdf_{name}"), |b| {
            b.iter(|| black_box(simulate(&dag, cfg, &spec, &SimOptions::default()).cycles))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transact_throughput,
    bench_engine_under_each_model
);
criterion_main!(benches);
