//! Criterion bench: the cache-mode axis — exact vs sampled vs analytic.
//!
//! Measures the same (DAG × config × scheduler) cell priced by each
//! registered cache mode, so the speedup `cache=sampled:rate=N` and
//! `cache=analytic` buy over exact per-access simulation is tracked per PR
//! (recorded in `EXPERIMENTS.md` and, with `--json`, in `BENCH_<n>.json`).
//! The analytic benchmark includes the DAG's one-pass stack-distance
//! profiling each iteration (a fresh DAG `Arc` per run would hit the profile
//! cache and measure nothing), so its number is the *worst* case — sweeps
//! amortise one profile across every cell.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdfws_cmp_model::default_config;
use pdfws_schedulers::{simulate, CacheModeSpec, SchedulerSpec, SimOptions};
use pdfws_workloads::{MergeSort, Workload};
use std::hint::black_box;

fn bench_cache_modes(c: &mut Criterion) {
    let dag = MergeSort::new(1 << 16).build_dag();
    let refs = dag.analyze().memory_accesses;
    let cfg = default_config(8).expect("default configuration");
    let spec = SchedulerSpec::pdf();
    let mut group = c.benchmark_group("cache_modes");
    group.throughput(Throughput::Elements(refs));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for mode in ["exact", "sampled:rate=16", "analytic"] {
        let options = SimOptions {
            cache_mode: mode.parse::<CacheModeSpec>().expect("registered mode"),
            ..SimOptions::default()
        };
        group.bench_function(format!("mergesort_64k_pdf_{mode}"), |b| {
            b.iter(|| black_box(simulate(&dag, &cfg, &spec, &options).cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_modes);
criterion_main!(benches);
