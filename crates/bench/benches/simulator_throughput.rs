//! Criterion bench: raw throughput of the simulation substrates.
//!
//! Tracks how many simulated memory references per second the cache hierarchy and
//! the execution engine sustain.  These are not paper results; they bound how
//! large the paper-scale experiments can be, so regressions here matter to every
//! other bench.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdfws_cache_sim::CmpCacheHierarchy;
use pdfws_cmp_model::default_config;
use pdfws_schedulers::{simulate, simulate_sequential, SchedulerSpec, SimOptions};
use pdfws_workloads::{SyntheticTree, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_hierarchy_accesses(c: &mut Criterion) {
    let cfg = default_config(8).expect("default configuration");
    let mut rng = StdRng::seed_from_u64(3);
    let addrs: Vec<(usize, u64, bool)> = (0..100_000)
        .map(|_| {
            (
                rng.gen_range(0..8usize),
                rng.gen_range(0..1u64 << 24),
                rng.gen_bool(0.3),
            )
        })
        .collect();
    let mut group = c.benchmark_group("cache_hierarchy");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("random_accesses_100k", |b| {
        b.iter(|| {
            let mut hier = CmpCacheHierarchy::new(&cfg);
            let mut offchip = 0u64;
            for &(core, addr, write) in &addrs {
                offchip += hier.access(core, addr, write).offchip_bytes;
            }
            black_box(offchip)
        })
    });
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let workload = SyntheticTree {
        depth: 6,
        fanout: 2,
        leaf_instructions: 2_000,
        leaf_private_bytes: 32 * 1024,
        shared_bytes: 256 * 1024,
        shared_fraction: 0.5,
        passes: 2,
    };
    let dag = workload.build_dag();
    let refs = dag.analyze().memory_accesses;
    let cfg = default_config(8).expect("default configuration");
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(refs));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for spec in SchedulerSpec::paper_pair() {
        group.bench_function(format!("synthetic_tree_{}", spec.canonical()), |b| {
            b.iter(|| black_box(simulate(&dag, &cfg, &spec, &SimOptions::default()).cycles))
        });
    }
    // The one-core baseline every sweep dedups and reruns constantly: with a
    // single busy core the engine's event heap stays size <= 1, so this case
    // isolates the heap-reuse fast path (strictly-earliest cores step without
    // pop/push).
    let one_core = default_config(1).expect("one-core configuration");
    group.bench_function("sequential_baseline_1core", |b| {
        b.iter(|| black_box(simulate_sequential(&dag, &one_core, &SimOptions::default()).cycles))
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchy_accesses, bench_engine_throughput);
criterion_main!(benches);
