//! Trace sinks: where emitted events go.
//!
//! Producers hold an `Option<Box<dyn TraceSink>>` and skip the emit entirely
//! when it is `None`, so the *off* mode costs a single branch per emit site
//! (guarded by the `trace_overhead` bench's <2% budget).  [`NullSink`] exists
//! for callers that must pass *a* sink but want events discarded;
//! [`EventTrace`] buffers them in order; [`SharedTrace`] is a cloneable handle
//! that lets the caller keep reading a buffer it lent to an engine.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::rc::Rc;

/// Destination for emitted trace events.
pub trait TraceSink {
    /// Record one event.  Implementations must preserve emission order.
    fn emit(&mut self, event: TraceEvent);

    /// Whether emits will actually be recorded.
    ///
    /// Producers may use this to skip building expensive events; they are free
    /// to call [`emit`](TraceSink::emit) regardless.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that discards every event.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A buffering sink that records events in emission order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct EventTrace {
    events: Vec<TraceEvent>,
}

impl EventTrace {
    /// An empty trace.
    pub fn new() -> Self {
        EventTrace::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the trace, yielding the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events of the given [`kind`](TraceEvent::kind).
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }
}

impl TraceSink for EventTrace {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A cloneable handle to a shared [`EventTrace`] buffer.
///
/// Install one clone in an engine (as a `Box<dyn TraceSink>`) and keep the
/// other; after the run, [`take_events`](SharedTrace::take_events) yields what
/// the engine emitted.  Single-threaded by construction (`Rc`), matching the
/// engines, which never share a sink across threads.
#[derive(Debug, Default, Clone)]
pub struct SharedTrace {
    inner: Rc<RefCell<EventTrace>>,
}

impl SharedTrace {
    /// A handle to a fresh, empty buffer.
    pub fn new() -> Self {
        SharedTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether no events were recorded so far.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Drain the buffer, returning the events recorded so far in order.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.borrow_mut().events)
    }
}

impl TraceSink for SharedTrace {
    fn emit(&mut self, event: TraceEvent) {
        self.inner.borrow_mut().emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64) -> TraceEvent {
        TraceEvent::ReadyDepth { t, depth: t }
    }

    #[test]
    fn null_sink_reports_disabled_and_discards() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(sample(1));
    }

    #[test]
    fn event_trace_buffers_in_order() {
        let mut trace = EventTrace::new();
        assert!(trace.is_empty());
        assert!(trace.enabled());
        trace.emit(sample(1));
        trace.emit(TraceEvent::CoreIdle { t: 2, core: 0 });
        trace.emit(sample(3));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.count("ready_depth"), 2);
        assert_eq!(trace.count("core_idle"), 1);
        let events = trace.into_events();
        assert_eq!(events[0].time(), 1);
        assert_eq!(events[2].time(), 3);
    }

    #[test]
    fn shared_trace_clones_observe_each_others_emits() {
        let handle = SharedTrace::new();
        let mut lent = handle.clone();
        lent.emit(sample(1));
        lent.emit(sample(2));
        assert_eq!(handle.len(), 2);
        let events = handle.take_events();
        assert_eq!(events.len(), 2);
        assert!(handle.is_empty(), "take drains the shared buffer");
    }

    #[test]
    fn shared_trace_works_as_a_boxed_dyn_sink() {
        let handle = SharedTrace::new();
        let mut boxed: Box<dyn TraceSink> = Box::new(handle.clone());
        boxed.emit(sample(7));
        assert_eq!(handle.take_events(), vec![sample(7)]);
    }
}
