//! Typed trace events emitted by the simulators, schedulers, and stream tiers.
//!
//! Every event carries an explicit timestamp: simulated cycles for the
//! cycle-accurate engines, wall-clock nanoseconds (offsets from run start) for
//! the real-thread stream backend.  Where an event is tied to a core or a task
//! it carries those ids too, so downstream consumers (the Perfetto exporter,
//! the [`timeline`](crate::timeline) summarizer) never have to guess context
//! from ordering alone.

/// A trace timestamp: simulated cycles, or wall nanoseconds for thread pools.
pub type TraceTime = u64;

/// One structured event in a trace.
///
/// Scheduler-internal happenings (steals, migrations, the hybrid switch) are
/// first buffered as [`PolicyEvent`]s by the policy hooks and stamped with the
/// simulation time by the engine that drains them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A core began executing a task.
    TaskStart {
        /// Timestamp.
        t: TraceTime,
        /// Executing core.
        core: usize,
        /// Task id (the DAG index).
        task: u64,
    },
    /// A core finished executing a task.
    TaskComplete {
        /// Timestamp.
        t: TraceTime,
        /// Executing core.
        core: usize,
        /// Task id (the DAG index).
        task: u64,
    },
    /// A core with no local work began scanning other cores' queues.
    StealAttempt {
        /// Timestamp.
        t: TraceTime,
        /// The would-be thief.
        core: usize,
    },
    /// A successful steal: `core` took `tasks` task(s), led by `task`, from
    /// `victim`.
    Steal {
        /// Timestamp.
        t: TraceTime,
        /// The thief.
        core: usize,
        /// The victim whose queue was raided.
        victim: usize,
        /// The task the thief will run next.
        task: u64,
        /// Total tasks transferred (more than one under `steal=half`).
        tasks: u64,
        /// Cycles the steal occupied the thief (`steal_cycles`; 0 under the
        /// free-steal model).
        cost: u64,
    },
    /// A task was enabled on `core` but queued on a different home core
    /// (static partitioning's cross-core placement).
    Migration {
        /// Timestamp.
        t: TraceTime,
        /// The enabling core.
        core: usize,
        /// The statically assigned home core the task was queued on.
        home: usize,
        /// Task id (the DAG index).
        task: u64,
    },
    /// The hybrid policy switched from the PDF heap to WS deques.
    HybridSwitch {
        /// Timestamp.
        t: TraceTime,
        /// Ready-queue depth that triggered the switch.
        ready: u64,
    },
    /// A core transitioned from idle to running work.
    CoreBusy {
        /// Timestamp.
        t: TraceTime,
        /// The core.
        core: usize,
    },
    /// A core ran out of work and went idle.
    CoreIdle {
        /// Timestamp.
        t: TraceTime,
        /// The core.
        core: usize,
    },
    /// Counter sample: scheduler ready-queue depth after a dispatch round.
    ReadyDepth {
        /// Timestamp.
        t: TraceTime,
        /// Tasks ready but not yet running.
        depth: u64,
    },
    /// Windowed cache counters: activity accumulated since the previous
    /// window sample (deltas, not running totals).
    CacheWindow {
        /// Timestamp (end of the window).
        t: TraceTime,
        /// Memory accesses issued during the window.
        accesses: u64,
        /// Private-L1 misses during the window (summed over cores).
        l1_misses: u64,
        /// Shared-L2 misses during the window.
        l2_misses: u64,
    },
    /// Counter sample: cycles the shared memory bus spent occupied by
    /// transfers since the previous sample (a delta, like
    /// [`CacheWindow`](TraceEvent::CacheWindow)).  Only emitted by the
    /// component memory-system model.
    BusOccupancy {
        /// Timestamp (end of the window).
        t: TraceTime,
        /// Bus-busy cycles accumulated during the window.
        busy_cycles: u64,
    },
    /// Counter sample: outstanding memory-system backlog at the sample
    /// instant — how many cycles of committed bus/DRAM work are still ahead
    /// of the clock.  Only emitted by the component memory-system model.
    DramQueueDepth {
        /// Timestamp.
        t: TraceTime,
        /// Backlog in cycles (0 when the memory system is idle).
        depth: u64,
    },
    /// A stream job was admitted into the serving slots.
    JobAdmit {
        /// Timestamp.
        t: TraceTime,
        /// Stream-unique job id.
        job: u64,
    },
    /// A stream job received its first execution quantum.
    JobDispatch {
        /// Timestamp.
        t: TraceTime,
        /// Stream-unique job id.
        job: u64,
    },
    /// A stream job completed.
    JobComplete {
        /// Timestamp.
        t: TraceTime,
        /// Stream-unique job id.
        job: u64,
    },
    /// Counter sample: stream jobs admitted but not yet complete.
    OutstandingJobs {
        /// Timestamp.
        t: TraceTime,
        /// Jobs in flight.
        jobs: u64,
    },
    /// A serving-tier job was shed (rejected at admission) because the SLO
    /// estimator predicted a target violation.
    JobShed {
        /// Timestamp.
        t: TraceTime,
        /// Stream-unique job id.
        job: u64,
    },
    /// Counter sample: cores the serving tier's autoscaler currently has
    /// powered on.
    ActiveCores {
        /// Timestamp.
        t: TraceTime,
        /// Cores online after the scaling decision.
        cores: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> TraceTime {
        match *self {
            TraceEvent::TaskStart { t, .. }
            | TraceEvent::TaskComplete { t, .. }
            | TraceEvent::StealAttempt { t, .. }
            | TraceEvent::Steal { t, .. }
            | TraceEvent::Migration { t, .. }
            | TraceEvent::HybridSwitch { t, .. }
            | TraceEvent::CoreBusy { t, .. }
            | TraceEvent::CoreIdle { t, .. }
            | TraceEvent::ReadyDepth { t, .. }
            | TraceEvent::CacheWindow { t, .. }
            | TraceEvent::BusOccupancy { t, .. }
            | TraceEvent::DramQueueDepth { t, .. }
            | TraceEvent::JobAdmit { t, .. }
            | TraceEvent::JobDispatch { t, .. }
            | TraceEvent::JobComplete { t, .. }
            | TraceEvent::OutstandingJobs { t, .. }
            | TraceEvent::JobShed { t, .. }
            | TraceEvent::ActiveCores { t, .. } => t,
        }
    }

    /// The event with its timestamp replaced by `t`.
    ///
    /// The engine uses this to keep per-core clocks monotone: its
    /// discrete-event loop can complete an overshooting core before an
    /// earlier-queued one, so a dispatch decision made "in the past" of a
    /// core that already ran ahead is re-stamped at that core's local clock.
    pub fn with_time(mut self, at: TraceTime) -> Self {
        match &mut self {
            TraceEvent::TaskStart { t, .. }
            | TraceEvent::TaskComplete { t, .. }
            | TraceEvent::StealAttempt { t, .. }
            | TraceEvent::Steal { t, .. }
            | TraceEvent::Migration { t, .. }
            | TraceEvent::HybridSwitch { t, .. }
            | TraceEvent::CoreBusy { t, .. }
            | TraceEvent::CoreIdle { t, .. }
            | TraceEvent::ReadyDepth { t, .. }
            | TraceEvent::CacheWindow { t, .. }
            | TraceEvent::BusOccupancy { t, .. }
            | TraceEvent::DramQueueDepth { t, .. }
            | TraceEvent::JobAdmit { t, .. }
            | TraceEvent::JobDispatch { t, .. }
            | TraceEvent::JobComplete { t, .. }
            | TraceEvent::OutstandingJobs { t, .. }
            | TraceEvent::JobShed { t, .. }
            | TraceEvent::ActiveCores { t, .. } => *t = at,
        }
        self
    }

    /// The core the event is pinned to, when it has one.
    ///
    /// [`Steal`](TraceEvent::Steal) reports the thief, and
    /// [`Migration`](TraceEvent::Migration) the enabling core; counters and
    /// stream-job events are process-wide and return `None`.
    pub fn core(&self) -> Option<usize> {
        match *self {
            TraceEvent::TaskStart { core, .. }
            | TraceEvent::TaskComplete { core, .. }
            | TraceEvent::StealAttempt { core, .. }
            | TraceEvent::Steal { core, .. }
            | TraceEvent::Migration { core, .. }
            | TraceEvent::CoreBusy { core, .. }
            | TraceEvent::CoreIdle { core, .. } => Some(core),
            _ => None,
        }
    }

    /// A stable, snake_case name for the event kind.
    ///
    /// These names agree with the `SimResult` field vocabulary (`migration`,
    /// not `steal`, for cross-core placements — see
    /// `SchedulerPolicy::migrations`).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TaskStart { .. } => "task_start",
            TraceEvent::TaskComplete { .. } => "task_complete",
            TraceEvent::StealAttempt { .. } => "steal_attempt",
            TraceEvent::Steal { .. } => "steal",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::HybridSwitch { .. } => "hybrid_switch",
            TraceEvent::CoreBusy { .. } => "core_busy",
            TraceEvent::CoreIdle { .. } => "core_idle",
            TraceEvent::ReadyDepth { .. } => "ready_depth",
            TraceEvent::CacheWindow { .. } => "cache_window",
            TraceEvent::BusOccupancy { .. } => "bus_occupancy",
            TraceEvent::DramQueueDepth { .. } => "dram_queue_depth",
            TraceEvent::JobAdmit { .. } => "job_admit",
            TraceEvent::JobDispatch { .. } => "job_dispatch",
            TraceEvent::JobComplete { .. } => "job_complete",
            TraceEvent::OutstandingJobs { .. } => "outstanding_jobs",
            TraceEvent::JobShed { .. } => "job_shed",
            TraceEvent::ActiveCores { .. } => "active_cores",
        }
    }
}

/// A scheduler-internal event buffered by the `SchedulerPolicy` trace hooks.
///
/// Policies run inside the engine and do not know the simulation clock, so
/// they record *what* happened and the engine stamps *when* by calling
/// [`PolicyEvent::at`] as it drains the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyEvent {
    /// A core with no local work began scanning for a victim.
    StealAttempt {
        /// The would-be thief.
        core: usize,
    },
    /// A successful steal of `tasks` task(s), led by `task`, from `victim`.
    Steal {
        /// The thief.
        core: usize,
        /// The victim.
        victim: usize,
        /// The task the thief will run next.
        task: u64,
        /// Total tasks transferred.
        tasks: u64,
        /// Cycles the steal occupied the thief (0 under the free-steal model).
        cost: u64,
    },
    /// A cross-core placement: enabled on `core`, queued on home `home`.
    Migration {
        /// The enabling core.
        core: usize,
        /// The home core the task was queued on.
        home: usize,
        /// Task id (the DAG index).
        task: u64,
    },
    /// The hybrid policy switched from the PDF heap to WS deques.
    HybridSwitch {
        /// Ready-queue depth that triggered the switch.
        ready: u64,
    },
}

impl PolicyEvent {
    /// Stamp the policy event with a simulation time, producing the
    /// engine-level [`TraceEvent`].
    pub fn at(self, t: TraceTime) -> TraceEvent {
        match self {
            PolicyEvent::StealAttempt { core } => TraceEvent::StealAttempt { t, core },
            PolicyEvent::Steal {
                core,
                victim,
                task,
                tasks,
                cost,
            } => TraceEvent::Steal {
                t,
                core,
                victim,
                task,
                tasks,
                cost,
            },
            PolicyEvent::Migration { core, home, task } => TraceEvent::Migration {
                t,
                core,
                home,
                task,
            },
            PolicyEvent::HybridSwitch { ready } => TraceEvent::HybridSwitch { t, ready },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_core_and_kind_cover_every_variant() {
        let events = [
            TraceEvent::TaskStart {
                t: 1,
                core: 0,
                task: 7,
            },
            TraceEvent::TaskComplete {
                t: 2,
                core: 0,
                task: 7,
            },
            TraceEvent::StealAttempt { t: 3, core: 1 },
            TraceEvent::Steal {
                t: 4,
                core: 1,
                victim: 0,
                task: 8,
                tasks: 2,
                cost: 0,
            },
            TraceEvent::Migration {
                t: 5,
                core: 0,
                home: 2,
                task: 9,
            },
            TraceEvent::HybridSwitch { t: 6, ready: 5 },
            TraceEvent::CoreBusy { t: 7, core: 3 },
            TraceEvent::CoreIdle { t: 8, core: 3 },
            TraceEvent::ReadyDepth { t: 9, depth: 4 },
            TraceEvent::CacheWindow {
                t: 10,
                accesses: 100,
                l1_misses: 10,
                l2_misses: 2,
            },
            TraceEvent::BusOccupancy {
                t: 11,
                busy_cycles: 512,
            },
            TraceEvent::DramQueueDepth { t: 12, depth: 40 },
            TraceEvent::JobAdmit { t: 13, job: 1 },
            TraceEvent::JobDispatch { t: 14, job: 1 },
            TraceEvent::JobComplete { t: 15, job: 1 },
            TraceEvent::OutstandingJobs { t: 16, jobs: 3 },
            TraceEvent::JobShed { t: 17, job: 2 },
            TraceEvent::ActiveCores { t: 18, cores: 4 },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time(), (i + 1) as u64);
            assert!(!e.kind().is_empty());
        }
        assert_eq!(events[0].core(), Some(0));
        assert_eq!(events[3].core(), Some(1), "steal reports the thief");
        assert_eq!(events[4].core(), Some(0), "migration reports the enabler");
        assert_eq!(events[8].core(), None, "counters are process-wide");
        assert_eq!(events[10].core(), None, "memsys counters are process-wide");
        assert_eq!(events[12].core(), None, "job events are process-wide");
    }

    #[test]
    fn policy_events_stamp_into_trace_events() {
        assert_eq!(
            PolicyEvent::StealAttempt { core: 2 }.at(10),
            TraceEvent::StealAttempt { t: 10, core: 2 }
        );
        assert_eq!(
            PolicyEvent::Steal {
                core: 1,
                victim: 0,
                task: 3,
                tasks: 1,
                cost: 64
            }
            .at(11),
            TraceEvent::Steal {
                t: 11,
                core: 1,
                victim: 0,
                task: 3,
                tasks: 1,
                cost: 64
            }
        );
        assert_eq!(
            PolicyEvent::Migration {
                core: 0,
                home: 1,
                task: 4
            }
            .at(12),
            TraceEvent::Migration {
                t: 12,
                core: 0,
                home: 1,
                task: 4
            }
        );
        assert_eq!(
            PolicyEvent::HybridSwitch { ready: 9 }.at(13),
            TraceEvent::HybridSwitch { t: 13, ready: 9 }
        );
    }
}
