//! Deterministic Chrome trace-event (Perfetto) JSON export.
//!
//! Emits the JSON object format `{"traceEvents":[...]}` understood by
//! `ui.perfetto.dev` and `chrome://tracing`:
//!
//! * one *process* per [`TraceTrack`] (one simulated run, e.g. one scheduler
//!   spec), one *thread* per core, so WS and PDF runs of the same cell sit
//!   side by side in the viewer;
//! * `"X"` complete slices for task executions (paired from
//!   `TaskStart`/`TaskComplete`);
//! * `"i"` instant events for steal attempts, steals (with the victim in
//!   `args`), migrations, and the hybrid PDF→WS switch;
//! * `"C"` counter tracks for ready-queue depth, busy cores, windowed cache
//!   misses, bus occupancy, memory-system backlog, and outstanding stream
//!   jobs;
//! * `"b"`/`"n"`/`"e"` async slices spanning each stream job's
//!   admit→dispatch→complete lifetime.
//!
//! Timestamps are the raw [`TraceTime`](crate::event::TraceTime) integers
//! (simulated cycles); the viewer labels them "µs", which is harmless for the
//! relative timeline.  The output is byte-deterministic: integers only, fixed
//! key order, no hash-map iteration — a golden-bytes test pins it across
//! `SweepRunner` thread counts.

use crate::event::TraceEvent;

/// One process row in the exported trace: a named run over `cores` cores.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTrack {
    /// Process id in the viewer; keep these unique and small (1, 2, ...).
    pub pid: u64,
    /// Process name, e.g. the canonical scheduler spec (`ws:steal=half`).
    pub name: String,
    /// Number of cores (threads) the run simulated.
    pub cores: usize,
    /// The run's events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceTrack {
    /// Bundle a run's events into a track.
    pub fn new(pid: u64, name: impl Into<String>, cores: usize, events: Vec<TraceEvent>) -> Self {
        TraceTrack {
            pid,
            name: name.into(),
            cores,
            events,
        }
    }
}

/// Escape a string for embedding in a JSON string literal (without quotes).
fn json_escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Append one track's events to `out` as trace-event JSON objects.
fn push_track(out: &mut Vec<String>, track: &TraceTrack) {
    let pid = track.pid;
    out.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
        json_escaped(&track.name)
    ));
    out.push(format!(
        "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
    ));
    for core in 0..track.cores {
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{core},\"args\":{{\"name\":\"core {core}\"}}}}"
        ));
    }

    // One open (task, start-time) slot per core; the engines run at most one
    // task per core at a time.
    let mut open: Vec<Option<(u64, u64)>> = vec![None; track.cores];
    let mut busy_cores: u64 = 0;
    let mut end: u64 = 0;

    for event in &track.events {
        end = end.max(event.time());
        match *event {
            TraceEvent::TaskStart { t, core, task } => {
                if core < open.len() {
                    open[core] = Some((task, t));
                }
            }
            TraceEvent::TaskComplete { t, core, task } => {
                let start = match open.get_mut(core).and_then(Option::take) {
                    Some((_, start)) => start,
                    None => t,
                };
                out.push(format!(
                    "{{\"name\":\"task {task}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{start},\"dur\":{},\"pid\":{pid},\"tid\":{core},\"args\":{{\"task\":{task}}}}}",
                    t.saturating_sub(start)
                ));
            }
            TraceEvent::StealAttempt { t, core } => {
                out.push(format!(
                    "{{\"name\":\"steal_attempt\",\"cat\":\"steal\",\"ph\":\"i\",\"ts\":{t},\"pid\":{pid},\"tid\":{core},\"s\":\"t\"}}"
                ));
            }
            TraceEvent::Steal {
                t,
                core,
                victim,
                task,
                tasks,
                cost,
            } => {
                out.push(format!(
                    "{{\"name\":\"steal\",\"cat\":\"steal\",\"ph\":\"i\",\"ts\":{t},\"pid\":{pid},\"tid\":{core},\"s\":\"t\",\"args\":{{\"victim\":{victim},\"task\":{task},\"tasks\":{tasks},\"cost\":{cost}}}}}"
                ));
            }
            TraceEvent::Migration {
                t,
                core,
                home,
                task,
            } => {
                out.push(format!(
                    "{{\"name\":\"migration\",\"cat\":\"migration\",\"ph\":\"i\",\"ts\":{t},\"pid\":{pid},\"tid\":{home},\"s\":\"t\",\"args\":{{\"from\":{core},\"task\":{task}}}}}"
                ));
            }
            TraceEvent::HybridSwitch { t, ready } => {
                out.push(format!(
                    "{{\"name\":\"hybrid_switch\",\"cat\":\"scheduler\",\"ph\":\"i\",\"ts\":{t},\"pid\":{pid},\"tid\":0,\"s\":\"p\",\"args\":{{\"ready\":{ready}}}}}"
                ));
            }
            TraceEvent::CoreBusy { t, .. } => {
                busy_cores += 1;
                out.push(format!(
                    "{{\"name\":\"busy_cores\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"busy\":{busy_cores}}}}}"
                ));
            }
            TraceEvent::CoreIdle { t, .. } => {
                busy_cores = busy_cores.saturating_sub(1);
                out.push(format!(
                    "{{\"name\":\"busy_cores\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"busy\":{busy_cores}}}}}"
                ));
            }
            TraceEvent::ReadyDepth { t, depth } => {
                out.push(format!(
                    "{{\"name\":\"ready_depth\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"ready\":{depth}}}}}"
                ));
            }
            TraceEvent::CacheWindow {
                t,
                accesses,
                l1_misses,
                l2_misses,
            } => {
                out.push(format!(
                    "{{\"name\":\"cache_misses\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"l1\":{l1_misses},\"l2\":{l2_misses}}}}}"
                ));
                out.push(format!(
                    "{{\"name\":\"mem_accesses\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"accesses\":{accesses}}}}}"
                ));
            }
            TraceEvent::BusOccupancy { t, busy_cycles } => {
                out.push(format!(
                    "{{\"name\":\"bus_occupancy\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"busy_cycles\":{busy_cycles}}}}}"
                ));
            }
            TraceEvent::DramQueueDepth { t, depth } => {
                out.push(format!(
                    "{{\"name\":\"dram_queue_depth\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"depth\":{depth}}}}}"
                ));
            }
            TraceEvent::JobAdmit { t, job } => {
                out.push(format!(
                    "{{\"name\":\"job\",\"cat\":\"job\",\"ph\":\"b\",\"id\":{job},\"ts\":{t},\"pid\":{pid},\"tid\":0}}"
                ));
            }
            TraceEvent::JobDispatch { t, job } => {
                out.push(format!(
                    "{{\"name\":\"dispatch\",\"cat\":\"job\",\"ph\":\"n\",\"id\":{job},\"ts\":{t},\"pid\":{pid},\"tid\":0}}"
                ));
            }
            TraceEvent::JobComplete { t, job } => {
                out.push(format!(
                    "{{\"name\":\"job\",\"cat\":\"job\",\"ph\":\"e\",\"id\":{job},\"ts\":{t},\"pid\":{pid},\"tid\":0}}"
                ));
            }
            TraceEvent::OutstandingJobs { t, jobs } => {
                out.push(format!(
                    "{{\"name\":\"outstanding_jobs\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"jobs\":{jobs}}}}}"
                ));
            }
            TraceEvent::JobShed { t, job } => {
                out.push(format!(
                    "{{\"name\":\"shed\",\"cat\":\"job\",\"ph\":\"i\",\"id\":{job},\"ts\":{t},\"pid\":{pid},\"tid\":0,\"s\":\"p\"}}"
                ));
            }
            TraceEvent::ActiveCores { t, cores } => {
                out.push(format!(
                    "{{\"name\":\"active_cores\",\"ph\":\"C\",\"ts\":{t},\"pid\":{pid},\"args\":{{\"cores\":{cores}}}}}"
                ));
            }
        }
    }

    // Close any slice still open at the end of the run (a task the trace saw
    // start but not finish) at the last observed timestamp.
    for (core, slot) in open.iter().enumerate() {
        if let Some((task, start)) = *slot {
            out.push(format!(
                "{{\"name\":\"task {task}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{start},\"dur\":{},\"pid\":{pid},\"tid\":{core},\"args\":{{\"task\":{task}}}}}",
                end.saturating_sub(start)
            ));
        }
    }
}

/// Render tracks as a Chrome trace-event JSON document.
///
/// The output is byte-deterministic for identical inputs; load it in
/// `ui.perfetto.dev` or `chrome://tracing`.
pub fn chrome_trace_json(tracks: &[TraceTrack]) -> String {
    let mut objects: Vec<String> = Vec::new();
    for track in tracks {
        push_track(&mut objects, track);
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&objects.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_track() -> TraceTrack {
        TraceTrack::new(
            1,
            "ws",
            2,
            vec![
                TraceEvent::CoreBusy { t: 0, core: 0 },
                TraceEvent::TaskStart {
                    t: 0,
                    core: 0,
                    task: 0,
                },
                TraceEvent::ReadyDepth { t: 0, depth: 2 },
                TraceEvent::StealAttempt { t: 3, core: 1 },
                TraceEvent::Steal {
                    t: 3,
                    core: 1,
                    victim: 0,
                    task: 2,
                    tasks: 1,
                    cost: 0,
                },
                TraceEvent::TaskComplete {
                    t: 10,
                    core: 0,
                    task: 0,
                },
                TraceEvent::CoreIdle { t: 10, core: 0 },
                TraceEvent::CacheWindow {
                    t: 8,
                    accesses: 64,
                    l1_misses: 9,
                    l2_misses: 3,
                },
                TraceEvent::BusOccupancy {
                    t: 8,
                    busy_cycles: 192,
                },
                TraceEvent::DramQueueDepth { t: 8, depth: 37 },
            ],
        )
    }

    #[test]
    fn exports_slices_instants_and_counters() {
        let json = chrome_trace_json(&[small_track()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"ws\""));
        assert!(json.contains("\"name\":\"core 1\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":0,\"dur\":10"));
        assert!(json.contains("\"name\":\"steal\""));
        assert!(json.contains("\"victim\":0"));
        assert!(json.contains("\"name\":\"ready_depth\""));
        assert!(json.contains("\"l2\":3"));
        assert!(json.contains("\"name\":\"bus_occupancy\""));
        assert!(json.contains("\"busy_cycles\":192"));
        assert!(json.contains("\"name\":\"dram_queue_depth\""));
        assert!(json.contains("\"depth\":37"));
    }

    #[test]
    fn output_is_deterministic() {
        let a = chrome_trace_json(&[small_track()]);
        let b = chrome_trace_json(&[small_track()]);
        assert_eq!(a, b);
    }

    #[test]
    fn unclosed_tasks_are_closed_at_trace_end() {
        let track = TraceTrack::new(
            1,
            "pdf",
            1,
            vec![
                TraceEvent::TaskStart {
                    t: 5,
                    core: 0,
                    task: 9,
                },
                TraceEvent::ReadyDepth { t: 20, depth: 0 },
            ],
        );
        let json = chrome_trace_json(&[track]);
        assert!(json.contains("\"name\":\"task 9\""));
        assert!(json.contains("\"ts\":5,\"dur\":15"));
    }

    #[test]
    fn job_lifecycle_becomes_async_slices() {
        let track = TraceTrack::new(
            3,
            "stream",
            1,
            vec![
                TraceEvent::JobAdmit { t: 1, job: 42 },
                TraceEvent::OutstandingJobs { t: 1, jobs: 1 },
                TraceEvent::JobDispatch { t: 2, job: 42 },
                TraceEvent::JobShed { t: 3, job: 43 },
                TraceEvent::ActiveCores { t: 3, cores: 6 },
                TraceEvent::JobComplete { t: 9, job: 42 },
            ],
        );
        let json = chrome_trace_json(&[track]);
        assert!(json.contains("\"ph\":\"b\",\"id\":42"));
        assert!(json.contains("\"ph\":\"n\",\"id\":42"));
        assert!(json.contains("\"ph\":\"e\",\"id\":42"));
        assert!(json.contains("\"outstanding_jobs\""));
        assert!(json.contains("\"name\":\"shed\",\"cat\":\"job\",\"ph\":\"i\",\"id\":43"));
        assert!(json.contains("\"name\":\"active_cores\",\"ph\":\"C\",\"ts\":3"));
        assert!(json.contains("\"cores\":6"));
    }

    #[test]
    fn names_are_json_escaped() {
        let track = TraceTrack::new(1, "a\"b\\c", 1, Vec::new());
        let json = chrome_trace_json(&[track]);
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
