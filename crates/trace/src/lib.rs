//! `pdfws-trace` — structured event tracing for the PDF-vs-WS simulators.
//!
//! End-of-run aggregates (total misses, total migrations, sojourn quantiles)
//! say *how much*; they never say *when*.  This crate adds the time axis: a
//! small vocabulary of typed [`TraceEvent`]s (task start/complete per core,
//! steal attempt/success with victim, migration, the hybrid PDF→WS switch,
//! windowed cache-miss counters, core idle/busy transitions, stream job
//! admit/dispatch/complete), sinks to collect them, and two consumers:
//!
//! * [`perfetto::chrome_trace_json`] — a deterministic Chrome trace-event /
//!   Perfetto JSON exporter, so any experiment cell opens in
//!   `ui.perfetto.dev` with one track per core, instant markers for steals,
//!   and counter tracks for ready depth and cache misses;
//! * [`timeline::timeline_table`] — a binned summary (idle fraction, steal
//!   rate, ready depth over time) as a metrics `Table` for the existing
//!   `Figure`/`ArtifactSet` pipeline.
//!
//! Producers (the simulation engine, the stream backends) hold an
//! `Option<Box<dyn TraceSink>>` and emit nothing when it is `None`; the
//! off-mode cost is one branch per emit site, guarded by the
//! `trace_overhead` bench.  Scheduler policies buffer [`PolicyEvent`]s via
//! default-no-op trait hooks and the engine stamps them with simulation time
//! as it drains, so custom policies keep compiling untouched.
//!
//! This crate sits in the substrate layer: it depends only on
//! `pdfws-metrics` (for the timeline `Table`) so every higher tier —
//! schedulers, stream, core, bench, report — can emit into it without
//! dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod perfetto;
pub mod sink;
pub mod timeline;

pub use event::{PolicyEvent, TraceEvent, TraceTime};
pub use perfetto::{chrome_trace_json, TraceTrack};
pub use sink::{EventTrace, NullSink, SharedTrace, TraceSink};
pub use timeline::timeline_table;
