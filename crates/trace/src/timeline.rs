//! Time-binned summaries of a trace: idle fraction, steal rate, ready depth,
//! and cache misses over time, as a metrics [`Table`].
//!
//! Where the Perfetto export preserves every event for interactive viewing,
//! the timeline collapses the same stream into a fixed number of bins so it
//! can ride the existing `Figure`/`ArtifactSet` pipeline (CSV, markdown,
//! ASCII charts) — and so the planned adaptive hybrid has a ready-made
//! windowed signal (ready-depth / steal-rate over time) to consume.

use crate::event::TraceEvent;
use pdfws_metrics::{Series, Table};

/// Bin `events` over the run's duration into `bins` rows.
///
/// Columns (one [`Series`] each):
///
/// * `busy_frac` — fraction of core-time spent running tasks in the bin
///   (1.0 − idle fraction), from `TaskStart`/`TaskComplete` intervals;
/// * `steals` / `steal_attempts` — successful and attempted steals per bin;
/// * `migrations` — cross-core placements per bin;
/// * `ready_depth` — mean of the ready-queue samples in the bin (the last
///   observed sample carries forward through empty bins);
/// * `l2_misses` — shared-L2 misses from `CacheWindow` samples per bin;
/// * `bus_occupancy` — cycles the shared bus spent occupied per bin, from
///   `BusOccupancy` samples;
/// * `dram_queue_depth` — mean memory-system backlog (cycles of outstanding
///   work) over the bin's `DramQueueDepth` samples (the last observed sample
///   carries forward through empty bins).
///
/// The x-axis is the bin's end timestamp in cycles.  An empty event slice
/// yields an all-zero table (the bins still exist).
pub fn timeline_table(title: &str, events: &[TraceEvent], cores: usize, bins: usize) -> Table {
    let bins = bins.max(1);
    let cores = cores.max(1);
    let makespan = events
        .iter()
        .map(TraceEvent::time)
        .max()
        .unwrap_or(0)
        .max(1);
    let width = makespan.div_ceil(bins as u64).max(1);
    let bin_of = |t: u64| ((t / width) as usize).min(bins - 1);

    let mut busy = vec![0.0f64; bins];
    let mut steals = vec![0.0f64; bins];
    let mut attempts = vec![0.0f64; bins];
    let mut migrations = vec![0.0f64; bins];
    let mut l2 = vec![0.0f64; bins];
    let mut bus_busy = vec![0.0f64; bins];
    let mut depth_sum = vec![0.0f64; bins];
    let mut depth_n = vec![0u64; bins];
    let mut dram_sum = vec![0.0f64; bins];
    let mut dram_n = vec![0u64; bins];

    // Per-core currently-open task start time; tasks still open at the end of
    // the trace are treated as running through the makespan.
    let mut open: Vec<Option<u64>> = vec![None; cores];
    let add_interval = |from: u64, to: u64, busy: &mut Vec<f64>| {
        let (from, to) = (from.min(to), to.min(makespan));
        if from >= to {
            return;
        }
        for (i, b) in busy.iter_mut().enumerate() {
            let lo = i as u64 * width;
            let hi = lo + width;
            let overlap = to.min(hi).saturating_sub(from.max(lo));
            *b += overlap as f64;
        }
    };

    for event in events {
        match *event {
            TraceEvent::TaskStart { t, core, .. } if core < cores => {
                open[core] = Some(t);
            }
            TraceEvent::TaskComplete { t, core, .. } => {
                if let Some(start) = open.get_mut(core).and_then(Option::take) {
                    add_interval(start, t, &mut busy);
                }
            }
            TraceEvent::Steal { t, .. } => steals[bin_of(t)] += 1.0,
            TraceEvent::StealAttempt { t, .. } => attempts[bin_of(t)] += 1.0,
            TraceEvent::Migration { t, .. } => migrations[bin_of(t)] += 1.0,
            TraceEvent::ReadyDepth { t, depth } => {
                let b = bin_of(t);
                depth_sum[b] += depth as f64;
                depth_n[b] += 1;
            }
            TraceEvent::CacheWindow { t, l2_misses, .. } => l2[bin_of(t)] += l2_misses as f64,
            TraceEvent::BusOccupancy { t, busy_cycles } => {
                bus_busy[bin_of(t)] += busy_cycles as f64;
            }
            TraceEvent::DramQueueDepth { t, depth } => {
                let b = bin_of(t);
                dram_sum[b] += depth as f64;
                dram_n[b] += 1;
            }
            _ => {}
        }
    }
    for slot in &open {
        if let Some(start) = *slot {
            add_interval(start, makespan, &mut busy);
        }
    }

    let core_time = (cores as u64 * width) as f64;
    let busy_frac: Vec<f64> = busy.iter().map(|b| b / core_time).collect();
    let mean_with_carry = |sums: &[f64], counts: &[u64]| {
        let mut out = Vec::with_capacity(bins);
        let mut carry = 0.0f64;
        for b in 0..bins {
            if counts[b] > 0 {
                carry = sums[b] / counts[b] as f64;
            }
            out.push(carry);
        }
        out
    };
    let ready = mean_with_carry(&depth_sum, &depth_n);
    let dram_depth = mean_with_carry(&dram_sum, &dram_n);

    let x_values: Vec<String> = (0..bins)
        .map(|i| (((i as u64) + 1) * width).min(makespan).to_string())
        .collect();
    let mut table = Table::new(title, "cycle", x_values);
    table.push_series(Series::new("busy_frac", busy_frac));
    table.push_series(Series::new("steals", steals));
    table.push_series(Series::new("steal_attempts", attempts));
    table.push_series(Series::new("migrations", migrations));
    table.push_series(Series::new("ready_depth", ready));
    table.push_series(Series::new("l2_misses", l2));
    table.push_series(Series::new("bus_occupancy", bus_busy));
    table.push_series(Series::new("dram_queue_depth", dram_depth));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_events_yield_a_zeroed_table() {
        let table = timeline_table("empty", &[], 2, 4);
        assert_eq!(table.x_values.len(), 4);
        for series in &table.series {
            assert!(series.values.iter().all(|v| *v == 0.0), "{}", series.name);
        }
    }

    #[test]
    fn busy_fraction_reflects_task_intervals() {
        // One core, busy for [0, 50) of a 100-cycle run summarized in 2 bins:
        // first bin fully busy, second fully idle.
        let events = vec![
            TraceEvent::TaskStart {
                t: 0,
                core: 0,
                task: 0,
            },
            TraceEvent::TaskComplete {
                t: 50,
                core: 0,
                task: 0,
            },
            TraceEvent::ReadyDepth { t: 100, depth: 0 },
        ];
        let table = timeline_table("busy", &events, 1, 2);
        let busy = &table.series[0];
        assert_eq!(busy.name, "busy_frac");
        assert!((busy.values[0] - 1.0).abs() < 1e-9, "{:?}", busy.values);
        assert!(busy.values[1].abs() < 1e-9, "{:?}", busy.values);
    }

    #[test]
    fn steals_and_misses_land_in_their_bins() {
        let events = vec![
            TraceEvent::Steal {
                t: 10,
                core: 1,
                victim: 0,
                task: 1,
                tasks: 1,
                cost: 0,
            },
            TraceEvent::StealAttempt { t: 10, core: 1 },
            TraceEvent::Migration {
                t: 60,
                core: 0,
                home: 1,
                task: 2,
            },
            TraceEvent::CacheWindow {
                t: 90,
                accesses: 100,
                l1_misses: 10,
                l2_misses: 4,
            },
            TraceEvent::ReadyDepth { t: 99, depth: 8 },
        ];
        let table = timeline_table("bins", &events, 2, 2);
        let series = |name: &str| {
            table
                .series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .values
                .clone()
        };
        assert_eq!(series("steals"), vec![1.0, 0.0]);
        assert_eq!(series("steal_attempts"), vec![1.0, 0.0]);
        assert_eq!(series("migrations"), vec![0.0, 1.0]);
        assert_eq!(series("l2_misses"), vec![0.0, 4.0]);
        assert_eq!(series("ready_depth"), vec![0.0, 8.0]);
    }

    #[test]
    fn memsys_counters_bin_and_carry() {
        let events = vec![
            TraceEvent::BusOccupancy {
                t: 10,
                busy_cycles: 30,
            },
            TraceEvent::BusOccupancy {
                t: 20,
                busy_cycles: 12,
            },
            TraceEvent::DramQueueDepth { t: 15, depth: 100 },
            TraceEvent::ReadyDepth { t: 99, depth: 0 },
        ];
        let table = timeline_table("memsys", &events, 2, 2);
        let series = |name: &str| {
            table
                .series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .values
                .clone()
        };
        // Both occupancy samples land in the first bin; the backlog sample
        // carries its mean into the empty second bin.
        assert_eq!(series("bus_occupancy"), vec![42.0, 0.0]);
        assert_eq!(series("dram_queue_depth"), vec![100.0, 100.0]);
    }

    #[test]
    fn ready_depth_carries_forward_through_empty_bins() {
        let events = vec![
            TraceEvent::ReadyDepth { t: 0, depth: 6 },
            TraceEvent::ReadyDepth { t: 1, depth: 2 },
            // Nothing after cycle 1; later bins inherit the mean of bin 0.
            TraceEvent::CacheWindow {
                t: 400,
                accesses: 0,
                l1_misses: 0,
                l2_misses: 0,
            },
        ];
        let table = timeline_table("carry", &events, 1, 4);
        let ready = table
            .series
            .iter()
            .find(|s| s.name == "ready_depth")
            .unwrap();
        assert_eq!(ready.values, vec![4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn open_tasks_count_as_busy_until_the_end() {
        let events = vec![
            TraceEvent::TaskStart {
                t: 0,
                core: 0,
                task: 0,
            },
            TraceEvent::ReadyDepth { t: 80, depth: 0 },
        ];
        let table = timeline_table("open", &events, 1, 2);
        let busy = &table.series[0].values;
        assert!(busy.iter().all(|v| *v > 0.99), "{busy:?}");
    }
}
