//! Series and table rendering for the experiment binaries.
//!
//! A [`Series`] is one line of a figure (e.g. "pdf" L2 MPKI over core counts);
//! a [`Table`] collects several series over the same x-axis and renders them as an
//! aligned text table (what the experiment binaries print) or CSV (what
//! EXPERIMENTS.md and plotting scripts consume).

use serde::{Deserialize, Serialize};

/// One named series of y-values over the table's shared x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name shown in the column header (e.g. "pdf", "ws").
    pub name: String,
    /// Values, one per x-axis entry.
    pub values: Vec<f64>,
}

impl Series {
    /// Create a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// A table: an x-axis column plus one column per series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Name of the x-axis column (e.g. "cores").
    pub x_name: String,
    /// The x-axis values (e.g. core counts), one per row.
    pub x_values: Vec<String>,
    /// The series (columns).
    pub series: Vec<Series>,
}

impl Table {
    /// Create an empty table over the given x-axis.
    pub fn new(title: impl Into<String>, x_name: impl Into<String>, x_values: Vec<String>) -> Self {
        Table {
            title: title.into(),
            x_name: x_name.into(),
            x_values,
            series: Vec::new(),
        }
    }

    /// Add a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the x-axis length.
    pub fn push_series(&mut self, series: Series) {
        assert_eq!(
            series.values.len(),
            self.x_values.len(),
            "series '{}' has {} values but the x-axis has {} entries",
            series.name,
            series.values.len(),
            self.x_values.len()
        );
        self.series.push(series);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.x_values.len()
    }

    /// Render as an aligned, human-readable text table.
    pub fn to_text(&self) -> String {
        let mut headers = vec![self.x_name.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.rows());
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![x.clone()];
            row.extend(self.series.iter().map(|s| format!("{:.4}", s.values[i])));
            rows.push(row);
        }
        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(c, h)| {
                rows.iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (header, separator, one row
    /// per x value).  Values print with full round-trip precision, the same as
    /// [`Table::to_csv`], so a markdown artifact carries the exact numbers;
    /// `|` in labels is escaped so arbitrary spec strings cannot break the
    /// table structure.
    pub fn to_markdown(&self) -> String {
        let escape = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        let mut headers = vec![escape(&self.x_name)];
        headers.extend(self.series.iter().map(|s| escape(&s.name)));
        out.push_str(&format!("| {} |\n", headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            headers.iter().map(|_| "---|").collect::<String>()
        ));
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![escape(x)];
            row.extend(self.series.iter().map(|s| format!("{}", s.values[i])));
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Parse a table back from its [`Table::to_csv`] rendering.
    ///
    /// The exact inverse of `to_csv`: quoted cells (labels containing commas,
    /// quotes, or line breaks — workload spec strings like
    /// `mergesort:grain=2048,n=65536` routinely carry commas) are unescaped,
    /// so `Table::from_csv(title, &t.to_csv())` reproduces `t`'s x-axis and
    /// series exactly (`f64` values render in shortest round-trip form).
    pub fn from_csv(title: impl Into<String>, csv: &str) -> Result<Table, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV: no header row")?;
        let mut columns = split_csv_line(header)?.into_iter();
        let x_name = columns.next().ok_or("CSV header has no columns")?;
        let names: Vec<String> = columns.collect();
        let mut x_values = Vec::new();
        let mut values: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        for (row_idx, line) in lines.filter(|l| !l.trim().is_empty()).enumerate() {
            let mut cells = split_csv_line(line)
                .map_err(|e| format!("row {row_idx}: {e}"))?
                .into_iter();
            x_values.push(
                cells
                    .next()
                    .ok_or_else(|| format!("row {row_idx} is empty"))?,
            );
            let mut got = 0;
            for (col, cell) in cells.enumerate() {
                let slot = values.get_mut(col).ok_or_else(|| {
                    format!(
                        "row {row_idx} has more cells than the {} headers",
                        1 + names.len()
                    )
                })?;
                slot.push(cell.parse::<f64>().map_err(|_| {
                    format!(
                        "row {row_idx}, column '{}': bad number '{cell}'",
                        names[col]
                    )
                })?);
                got += 1;
            }
            if got != names.len() {
                return Err(format!(
                    "row {row_idx} has {got} value cells but the header names {} series",
                    names.len()
                ));
            }
        }
        let mut table = Table::new(title, x_name, x_values);
        for (name, vals) in names.iter().zip(values) {
            table.push_series(Series::new(name.clone(), vals));
        }
        Ok(table)
    }

    /// Render as CSV (header row, then one row per x value).  Cells
    /// containing commas, quotes, or line breaks are quoted per RFC 4180
    /// (workload spec strings like `mergesort:grain=2048,n=65536` appear as
    /// both labels and x values), so every table round-trips through
    /// [`Table::from_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut headers = vec![csv_cell(&self.x_name)];
        headers.extend(self.series.iter().map(|s| csv_cell(&s.name)));
        out.push_str(&headers.join(","));
        out.push('\n');
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![csv_cell(x)];
            row.extend(self.series.iter().map(|s| format!("{}", s.values[i])));
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Quote one CSV cell if it needs it (RFC 4180: embedded commas, quotes, or
/// line breaks; inner quotes double).
fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV line into unescaped cells (the inverse of [`csv_cell`]
/// joining; multi-line quoted cells are not produced by `to_csv`'s
/// line-oriented layout, so a dangling quote is an error).
fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    loop {
        match chars.next() {
            Some('"') if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    quoted = false;
                }
            }
            Some('"') if cell.is_empty() => quoted = true,
            Some(',') if !quoted => {
                cells.push(std::mem::take(&mut cell));
            }
            Some(c) => cell.push(c),
            None => {
                if quoted {
                    return Err(format!("unterminated quoted cell in '{line}'"));
                }
                cells.push(cell);
                return Ok(cells);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Figure 1 (left): L2 misses per 1000 instructions",
            "cores",
            vec!["1".into(), "2".into(), "4".into()],
        );
        t.push_series(Series::new("pdf", vec![0.5, 0.45, 0.4]));
        t.push_series(Series::new("ws", vec![0.5, 0.8, 1.2]));
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let text = sample().to_text();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("cores"));
        assert!(text.contains("pdf"));
        assert!(text.contains("ws"));
        assert!(text.contains("1.2000"));
        assert_eq!(text.lines().count(), 1 + 1 + 1 + 3);
    }

    #[test]
    fn csv_rendering_round_trips_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cores,pdf,ws");
        assert_eq!(lines[1], "1,0.5,0.5");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn rows_reports_x_axis_length() {
        assert_eq!(sample().rows(), 3);
    }

    #[test]
    #[should_panic(expected = "values but the x-axis")]
    fn mismatched_series_length_panics() {
        let mut t = sample();
        t.push_series(Series::new("bad", vec![1.0]));
    }

    #[test]
    fn markdown_rendering_is_a_pipe_table() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| cores | pdf | ws |");
        assert_eq!(lines[1], "|---|---|---|");
        assert_eq!(lines[2], "| 1 | 0.5 | 0.5 |");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_parses_back_to_the_same_table() {
        let t = sample();
        let back = Table::from_csv(t.title.clone(), &t.to_csv()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comma_bearing_labels_quote_and_round_trip() {
        // Workload spec strings carry commas; they appear as x values (the
        // replication suite's C5 figure) and as series names (coarse_vs_fine).
        let mut t = Table::new(
            "granularity",
            "workload",
            vec![
                "mergesort:grain=2048,n=65536".into(),
                "mergesort:coarse=32,grain=2048,n=65536".into(),
            ],
        );
        t.push_series(Series::new("pdf_speedup", vec![4.1, 1.5]));
        t.push_series(Series::new("per \"spec\", quoted", vec![1.0, 2.0]));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "workload,pdf_speedup,\"per \"\"spec\"\", quoted\""
        );
        assert_eq!(lines[1], "\"mergesort:grain=2048,n=65536\",4.1,1");
        let back = Table::from_csv(t.title.clone(), &csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn markdown_escapes_pipes_in_labels() {
        let mut t = Table::new("t", "a|b", vec!["x|y".into()]);
        t.push_series(Series::new("s|1", vec![2.0]));
        let md = t.to_markdown();
        assert!(md.contains("| a\\|b | s\\|1 |"), "{md}");
        assert!(md.contains("| x\\|y | 2 |"), "{md}");
    }

    #[test]
    fn csv_parse_errors_carry_context() {
        assert!(Table::from_csv("t", "").is_err());
        let err = Table::from_csv("t", "cores,pdf\n1,abc\n").unwrap_err();
        assert!(err.contains("bad number 'abc'"), "{err}");
        let err = Table::from_csv("t", "cores,pdf\n1\n").unwrap_err();
        assert!(err.contains("1 series"), "{err}");
        let err = Table::from_csv("t", "cores,pdf\n1,2,3\n").unwrap_err();
        assert!(err.contains("more cells"), "{err}");
    }
}
