//! Series and table rendering for the experiment binaries.
//!
//! A [`Series`] is one line of a figure (e.g. "pdf" L2 MPKI over core counts);
//! a [`Table`] collects several series over the same x-axis and renders them as an
//! aligned text table (what the experiment binaries print) or CSV (what
//! EXPERIMENTS.md and plotting scripts consume).

use serde::{Deserialize, Serialize};

/// One named series of y-values over the table's shared x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name shown in the column header (e.g. "pdf", "ws").
    pub name: String,
    /// Values, one per x-axis entry.
    pub values: Vec<f64>,
}

impl Series {
    /// Create a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// A table: an x-axis column plus one column per series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Name of the x-axis column (e.g. "cores").
    pub x_name: String,
    /// The x-axis values (e.g. core counts), one per row.
    pub x_values: Vec<String>,
    /// The series (columns).
    pub series: Vec<Series>,
}

impl Table {
    /// Create an empty table over the given x-axis.
    pub fn new(title: impl Into<String>, x_name: impl Into<String>, x_values: Vec<String>) -> Self {
        Table {
            title: title.into(),
            x_name: x_name.into(),
            x_values,
            series: Vec::new(),
        }
    }

    /// Add a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the x-axis length.
    pub fn push_series(&mut self, series: Series) {
        assert_eq!(
            series.values.len(),
            self.x_values.len(),
            "series '{}' has {} values but the x-axis has {} entries",
            series.name,
            series.values.len(),
            self.x_values.len()
        );
        self.series.push(series);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.x_values.len()
    }

    /// Render as an aligned, human-readable text table.
    pub fn to_text(&self) -> String {
        let mut headers = vec![self.x_name.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.rows());
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![x.clone()];
            row.extend(self.series.iter().map(|s| format!("{:.4}", s.values[i])));
            rows.push(row);
        }
        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(c, h)| {
                rows.iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header row, then one row per x value).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut headers = vec![self.x_name.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        out.push_str(&headers.join(","));
        out.push('\n');
        for (i, x) in self.x_values.iter().enumerate() {
            let mut row = vec![x.clone()];
            row.extend(self.series.iter().map(|s| format!("{}", s.values[i])));
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Figure 1 (left): L2 misses per 1000 instructions",
            "cores",
            vec!["1".into(), "2".into(), "4".into()],
        );
        t.push_series(Series::new("pdf", vec![0.5, 0.45, 0.4]));
        t.push_series(Series::new("ws", vec![0.5, 0.8, 1.2]));
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let text = sample().to_text();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("cores"));
        assert!(text.contains("pdf"));
        assert!(text.contains("ws"));
        assert!(text.contains("1.2000"));
        assert_eq!(text.lines().count(), 1 + 1 + 1 + 3);
    }

    #[test]
    fn csv_rendering_round_trips_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cores,pdf,ws");
        assert_eq!(lines[1], "1,0.5,0.5");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn rows_reports_x_axis_length() {
        assert_eq!(sample().rows(), 3);
    }

    #[test]
    #[should_panic(expected = "values but the x-axis")]
    fn mismatched_series_length_panics() {
        let mut t = sample();
        t.push_series(Series::new("bad", vec![1.0]));
    }
}
