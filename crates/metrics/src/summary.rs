//! Simple aggregation helpers used when summarising across benchmarks.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean (the conventional way to average speedups across benchmarks);
/// 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires strictly positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_is_below_arithmetic_for_spread_values() {
        let v = [1.0, 10.0];
        assert!(geometric_mean(&v) < mean(&v));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geometric_mean_rejects_non_positive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
