//! Simple aggregation helpers used when summarising across benchmarks.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean (the conventional way to average speedups across benchmarks);
/// 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires strictly positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Nearest-rank percentile (inclusive): the smallest value such that at least
/// `p` percent of the samples are ≤ it.  `p` is in [0, 100].  Returns 0 for an
/// empty slice.
///
/// This is the latency-SLO convention: `percentile(&sojourns, 99.0)` is the
/// p99 a serving system would report.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile over NaN-free samples"));
    nearest_rank(&sorted, p)
}

/// The nearest-rank lookup shared by [`percentile`] and [`Quantiles`]; expects
/// `sorted` to be ascending.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// The latency quantiles a serving system reports about one batch of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// Nearest-rank p95.
    pub p95: f64,
    /// Nearest-rank p99.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Quantiles {
    /// Summarise a batch of samples; all-zero for an empty batch.  Sorts the
    /// samples once and indexes every quantile out of the same sorted copy.
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantiles over NaN-free samples"));
        Quantiles {
            count: sorted.len(),
            mean: mean(values),
            p50: nearest_rank(&sorted, 50.0),
            p95: nearest_rank(&sorted, 95.0),
            p99: nearest_rank(&sorted, 99.0),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_is_below_arithmetic_for_spread_values() {
        let v = [1.0, 10.0];
        assert!(geometric_mean(&v) < mean(&v));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geometric_mean_rejects_non_positive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
        // Order must not matter.
        let shuffled = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&shuffled, 50.0), 2.0);
    }

    #[test]
    fn quantiles_summarise_a_batch() {
        let q = Quantiles::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.count, 4);
        assert!((q.mean - 2.5).abs() < 1e-12);
        assert_eq!(q.p50, 2.0);
        assert_eq!(q.max, 4.0);
        let empty = Quantiles::from_values(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }
}
