//! The derived quantities the paper reports.

/// L2 misses per 1000 instructions (the left panel of Figure 1).
///
/// Returns 0 for an empty run.
pub fn l2_mpki(l2_misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        l2_misses as f64 * 1000.0 / instructions as f64
    }
}

/// Speedup of a parallel run over a baseline (sequential) run, from their
/// makespans in cycles (the right panel of Figure 1).
pub fn speedup(baseline_cycles: u64, parallel_cycles: u64) -> f64 {
    if parallel_cycles == 0 {
        0.0
    } else {
        baseline_cycles as f64 / parallel_cycles as f64
    }
}

/// Relative speedup of PDF over WS: `ws_cycles / pdf_cycles` (> 1 means PDF wins).
/// The paper reports 1.3–1.6× for divide-and-conquer and bandwidth-limited
/// irregular programs.
pub fn relative_speedup(ws_cycles: u64, pdf_cycles: u64) -> f64 {
    speedup(ws_cycles, pdf_cycles)
}

/// Percentage reduction in off-chip traffic of PDF relative to WS.
/// The paper reports 13–41 %.
pub fn traffic_reduction_percent(ws_bytes: u64, pdf_bytes: u64) -> f64 {
    if ws_bytes == 0 {
        0.0
    } else {
        (ws_bytes as f64 - pdf_bytes as f64) / ws_bytes as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_definition() {
        assert!((l2_mpki(10, 10_000) - 1.0).abs() < 1e-12);
        assert!((l2_mpki(3, 1_000) - 3.0).abs() < 1e-12);
        assert_eq!(l2_mpki(5, 0), 0.0);
    }

    #[test]
    fn speedup_definition() {
        assert!((speedup(1000, 250) - 4.0).abs() < 1e-12);
        assert!((speedup(1000, 1000) - 1.0).abs() < 1e-12);
        assert_eq!(speedup(1000, 0), 0.0);
    }

    #[test]
    fn relative_speedup_greater_than_one_means_pdf_wins() {
        assert!(relative_speedup(1500, 1000) > 1.0);
        assert!(relative_speedup(900, 1000) < 1.0);
    }

    #[test]
    fn traffic_reduction_percentage() {
        assert!((traffic_reduction_percent(100, 59) - 41.0).abs() < 1e-12);
        assert!((traffic_reduction_percent(100, 87) - 13.0).abs() < 1e-12);
        assert!(traffic_reduction_percent(100, 120) < 0.0);
        assert_eq!(traffic_reduction_percent(0, 10), 0.0);
    }
}
