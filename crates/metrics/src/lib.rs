//! Metrics, series and table reporting for the scheduler/cache experiments.
//!
//! Every number the paper reports is one of a handful of derived quantities:
//! L2 misses per 1000 instructions, speedup over the one-core sequential run,
//! relative speedup of PDF over WS, and percentage reduction in off-chip traffic.
//! This crate computes them ([`measures`]) and renders sweep results as aligned
//! text tables and CSV ([`table`]) so that every experiment binary prints its
//! figure/table in the same format.

pub mod measures;
pub mod streaming;
pub mod summary;
pub mod table;

pub use measures::{l2_mpki, relative_speedup, speedup, traffic_reduction_percent};
pub use streaming::{P2Quantile, ReservoirSampler, StreamingQuantiles};
pub use summary::{geometric_mean, mean, percentile, Quantiles};
pub use table::{Series, Table};
