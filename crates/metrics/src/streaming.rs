//! Constant-memory streaming statistics: P² quantile estimation and reservoir
//! sampling.
//!
//! [`Quantiles::from_values`](crate::Quantiles::from_values) needs every
//! observation buffered, which caps sustained job-stream runs at whatever fits
//! in memory.  The serving tier instead folds each observation into O(1)
//! state:
//!
//! * [`P2Quantile`] — the P² algorithm (Jain & Chlamtac, CACM 1985): five
//!   markers tracking one target quantile, adjusted per observation with a
//!   piecewise-parabolic height update.  Exact below five observations,
//!   approximate (and tolerance-tested) beyond.
//! * [`ReservoirSampler`] — Vitter's Algorithm R with a seeded deterministic
//!   generator: a uniform fixed-size sample of the stream, from which *any*
//!   quantile can be estimated after the fact.
//! * [`StreamingQuantiles`] — the bundle the sinks use: count, running mean,
//!   min/max, and P² markers for p50/p95/p99, exported as an ordinary
//!   [`Quantiles`] summary.
//!
//! All three are deterministic: the same observation sequence (and seed, for
//! the reservoir) produces bit-identical state.

use crate::summary::{percentile, Quantiles};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Streaming estimator for a single quantile via the P² algorithm.
///
/// Holds exactly five marker heights/positions regardless of how many
/// observations it absorbs.  Until five observations have been seen the
/// estimate is exact (computed from the sorted buffer of what's there).
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    /// Target quantile in (0, 1), e.g. 0.99.
    p: f64,
    /// Observations absorbed so far.
    count: u64,
    /// Marker heights (the first `count` entries are the init buffer while
    /// `count < 5`).
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    rates: [f64; 5],
}

impl P2Quantile {
    /// Estimator for the quantile `p` (`0 < p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            rates: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// The target quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation into the marker state.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            // Initialisation phase: collect and keep sorted.
            let n = self.count as usize;
            self.heights[n - 1] = x;
            self.heights[..n].sort_by(f64::total_cmp);
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1], clamping
        // x into the observed range (markers 0 and 4 track min and max).
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // One of the three interior cells.
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.rates[i];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabolic prediction leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate of the tracked quantile (0.0 before any observation).
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            // Exact nearest-rank on the init buffer, matching
            // `Quantiles::from_values` semantics for tiny samples.
            let n = self.count as usize;
            let rank = ((self.p * n as f64).ceil() as usize).max(1);
            return self.heights[(rank - 1).min(n - 1)];
        }
        self.heights[2]
    }
}

/// Uniform fixed-size sample of a stream (Vitter's Algorithm R).
///
/// Deterministic for a given seed and observation order.  Memory is bounded by
/// the capacity regardless of stream length.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: u64,
    sample: Vec<f64>,
    rng: StdRng,
}

impl ReservoirSampler {
    /// A sampler keeping at most `capacity` observations.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        ReservoirSampler {
            capacity,
            seen: 0,
            sample: Vec::with_capacity(capacity),
            rng: StdRng::seed_from_u64(seed ^ 0x7E5E_4701_44E5_70C7),
        }
    }

    /// Observations offered so far (not the number retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained sample, in retention order (not sorted).
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// Offer one observation to the reservoir.
    pub fn observe(&mut self, x: f64) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(x);
            return;
        }
        let slot = self.rng.gen_range(0..self.seen);
        if (slot as usize) < self.capacity {
            self.sample[slot as usize] = x;
        }
    }

    /// Estimate the `p`-th percentile (`0 <= p <= 100`) from the sample.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.sample, p)
    }
}

/// The constant-memory counterpart of [`Quantiles::from_values`]: count, mean,
/// min/max exactly; p50/p95/p99 via one [`P2Quantile`] each.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingQuantiles {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl Default for StreamingQuantiles {
    fn default() -> Self {
        StreamingQuantiles::new()
    }
}

impl StreamingQuantiles {
    /// An empty summary.
    pub fn new() -> Self {
        StreamingQuantiles {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Fold one observation into every tracked statistic.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.p50.observe(x);
        self.p95.observe(x);
        self.p99.observe(x);
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 before any observation).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0.0 before any observation).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 before any observation).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Current p50 estimate.
    pub fn p50(&self) -> f64 {
        self.p50.estimate()
    }

    /// Current p95 estimate.
    pub fn p95(&self) -> f64 {
        self.p95.estimate()
    }

    /// Current p99 estimate.
    pub fn p99(&self) -> f64 {
        self.p99.estimate()
    }

    /// Export as the summary type the buffered paths produce.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count as usize,
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_is_exact_below_five_observations() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), 0.0);
        for x in [5.0, 1.0, 3.0] {
            q.observe(x);
        }
        // Nearest-rank median of {1, 3, 5} is 3.
        assert_eq!(q.estimate(), 3.0);
    }

    #[test]
    fn p2_tracks_the_median_of_a_uniform_ramp() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_000 {
            q.observe(i as f64);
        }
        let rel = (q.estimate() - 5_000.0).abs() / 5_000.0;
        assert!(rel < 0.02, "median estimate {} off by {rel}", q.estimate());
    }

    #[test]
    fn p2_tail_estimate_close_to_exact_on_shuffled_input() {
        // Deterministic shuffle of 0..n via a multiplicative permutation.
        let n: u64 = 9_973; // prime, so the map below is a bijection
        let mut q = P2Quantile::new(0.95);
        let mut values = Vec::new();
        for i in 0..n {
            let x = ((i * 4_801) % n) as f64;
            q.observe(x);
            values.push(x);
        }
        let exact = percentile(&values, 95.0);
        let rel = (q.estimate() - exact).abs() / exact;
        assert!(rel < 0.05, "p95 {} vs exact {exact}", q.estimate());
    }

    #[test]
    fn reservoir_is_exhaustive_below_capacity() {
        let mut r = ReservoirSampler::new(100, 7);
        for i in 0..50 {
            r.observe(i as f64);
        }
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.seen(), 50);
        assert_eq!(r.percentile(100.0), 49.0);
    }

    #[test]
    fn reservoir_stays_bounded_and_deterministic() {
        let run = || {
            let mut r = ReservoirSampler::new(64, 11);
            for i in 0..10_000 {
                r.observe((i % 997) as f64);
            }
            r.sample().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 64);
        assert_eq!(a, b, "same seed + stream must give the same reservoir");
    }

    #[test]
    fn reservoir_percentile_approximates_the_stream() {
        let mut r = ReservoirSampler::new(512, 3);
        for i in 0..100_000u64 {
            r.observe(((i * 7_919) % 100_000) as f64);
        }
        let p50 = r.percentile(50.0);
        assert!(
            (p50 - 50_000.0).abs() / 50_000.0 < 0.15,
            "reservoir p50 {p50}"
        );
    }

    #[test]
    fn streaming_quantiles_match_buffered_on_a_ramp() {
        let values: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let exact = Quantiles::from_values(&values);
        let mut s = StreamingQuantiles::new();
        for &v in &values {
            s.observe(v);
        }
        let est = s.quantiles();
        assert_eq!(est.count, exact.count);
        assert_eq!(est.max, exact.max);
        assert!((est.mean - exact.mean).abs() / exact.mean < 1e-9);
        for (name, a, b) in [
            ("p50", est.p50, exact.p50),
            ("p95", est.p95, exact.p95),
            ("p99", est.p99, exact.p99),
        ] {
            assert!((a - b).abs() / b < 0.02, "{name}: {a} vs {b}");
        }
    }

    #[test]
    fn empty_streaming_quantiles_are_all_zero() {
        let s = StreamingQuantiles::new();
        let q = s.quantiles();
        assert_eq!(q.count, 0);
        assert_eq!(q.mean, 0.0);
        assert_eq!(q.p99, 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn p2_rejects_out_of_range_quantiles() {
        let _ = P2Quantile::new(1.0);
    }
}
