//! `pdfws-spec` — the shared machinery behind every string-addressable spec
//! axis in the workspace.
//!
//! Two of the experiment axes are open registries addressed by strings of the
//! same shape: `name:key=value,key=value` — scheduler specs
//! (`ws:steal=half,victim=random`, resolved by `pdfws-schedulers`) and
//! workload specs (`mergesort:grain=64,n=262144`, resolved by
//! `pdfws-workloads`).  This crate holds the domain-independent half both are
//! built on:
//!
//! * the **grammar** — [`parse_spec`] splits, trims, and rejects malformed or
//!   duplicated `key=value` fragments; [`format_spec`] prints the canonical
//!   (sorted-by-key) form, so `Display` → `FromStr` is the identity for every
//!   domain spec type;
//! * **typed parameters** — [`ParamSpec`] declares one parameter's key, value
//!   type ([`ParamKind`]) and help line, so registries can type-check values
//!   (and normalise them: `lag=007` → `lag=7`) before anything is built;
//! * the **registry substrate** — [`SpecTable`] maps names to factories
//!   implementing [`SpecFamily`], validates raw `(name, params)` pairs
//!   against their declarations, and renders the `--list` help text;
//! * **errors** — [`SpecError`] carries a [`Vocab`] word pack so the same
//!   machinery reports "unknown scheduler policy 'x'; known policies: …" in
//!   one domain and "unknown workload 'x'; known workloads: …" in the other.
//!
//! Domain crates keep their own spec types (`SchedulerSpec`, `WorkloadSpec`)
//! and factory traits (which add the domain `build` method and cross-parameter
//! validation hooks); everything name- and parameter-shaped routes through
//! here.
//!
//! ```
//! use pdfws_spec::{parse_spec, Vocab};
//!
//! static VOCAB: Vocab = Vocab {
//!     subject: "scheduler",
//!     entity: "scheduler policy",
//!     known_label: "known policies",
//! };
//!
//! // The grammar splits `name:key=value,...` and trims whitespace ...
//! let (name, params) = parse_spec("ws: steal=half, victim=random", &VOCAB).unwrap();
//! assert_eq!(name, "ws");
//! assert_eq!(params.get("steal").map(String::as_str), Some("half"));
//! assert_eq!(params.len(), 2);
//!
//! // ... and rejects malformed fragments with the domain's vocabulary.
//! let err = parse_spec("ws:steal", &VOCAB).unwrap_err();
//! assert!(err.to_string().contains("key=value"), "{err}");
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// The word pack a spec domain reports its errors with.
///
/// All three fields are substituted into the fixed [`SpecError`] message
/// templates, so two domains produce structurally identical — but correctly
/// worded — diagnostics.
#[derive(Debug, PartialEq, Eq)]
pub struct Vocab {
    /// The domain noun: "scheduler" / "workload".
    pub subject: &'static str,
    /// What an unknown name is called: "scheduler policy" / "workload".
    pub entity: &'static str,
    /// Label for the known-names list: "known policies" / "known workloads".
    pub known_label: &'static str,
}

/// The type of one declared parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// An unsigned integer (`seed=7`).  Values are normalised (`007` → `7`).
    U64,
    /// A real number in `[0, 1]` (`shared-fraction=0.5`).  Values are
    /// normalised through `f64` (`0.50` → `0.5`).
    Fraction,
    /// A strictly positive real number (`width=2.67`).  Values are normalised
    /// through `f64` (`2.50` → `2.5`); infinities are accepted (an unbounded
    /// resource), NaN and non-positive values are not.
    PositiveF64,
    /// One of a fixed set of words (`victim=random`).
    Choice(&'static [&'static str]),
}

impl ParamKind {
    /// Validate a raw value and return its canonical form, or a description of
    /// what was expected.
    pub fn canonicalise(&self, value: &str) -> Result<String, String> {
        match self {
            ParamKind::U64 => value
                .parse::<u64>()
                .map(|v| v.to_string())
                .map_err(|_| "an unsigned integer".to_string()),
            ParamKind::Fraction => match value.parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => Ok(v.to_string()),
                _ => Err("a fraction between 0 and 1".to_string()),
            },
            ParamKind::PositiveF64 => match value.parse::<f64>() {
                Ok(v) if v > 0.0 => Ok(v.to_string()),
                _ => Err("a positive real number".to_string()),
            },
            ParamKind::Choice(options) => {
                if options.contains(&value) {
                    Ok(value.to_string())
                } else {
                    Err(format!("one of {}", options.join(", ")))
                }
            }
        }
    }

    /// How the value type renders in help text (`u64`, `0..1`, `a|b|c`).
    pub fn help_token(&self) -> String {
        match self {
            ParamKind::U64 => "u64".to_string(),
            ParamKind::Fraction => "0..1".to_string(),
            ParamKind::PositiveF64 => "f64>0".to_string(),
            ParamKind::Choice(options) => options.join("|"),
        }
    }
}

/// One parameter a factory accepts.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// The key as it appears in spec strings (`"victim"`).
    pub key: &'static str,
    /// Value type and constraints.
    pub kind: ParamKind,
    /// One-line description, shown by [`SpecTable::help`].
    pub doc: &'static str,
}

/// What went wrong parsing or validating a spec (domain-independent shape;
/// the [`Vocab`] on the enclosing [`SpecError`] supplies the wording).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// The spec string was empty.
    Empty,
    /// The name is not in the registry.
    UnknownName {
        /// The name that failed to resolve.
        name: String,
        /// Registered names at the time of the error.
        known: Vec<String>,
    },
    /// The named factory has no such parameter.
    UnknownParam {
        /// The registered name the parameter was given to.
        owner: String,
        /// The unknown key.
        key: String,
        /// The keys the factory does accept.
        known: Vec<String>,
    },
    /// A parameter was not of the form `key=value`.
    MalformedParam {
        /// The offending fragment.
        fragment: String,
    },
    /// The same key appeared twice.
    DuplicateParam {
        /// The repeated key.
        key: String,
    },
    /// A combination of individually-valid parameters the factory rejected.
    InvalidCombination {
        /// The registered name that rejected the combination.
        owner: String,
        /// The factory's explanation.
        message: String,
    },
    /// The value could not be parsed as the parameter's declared type.
    InvalidValue {
        /// The registered name the parameter belongs to.
        owner: String,
        /// The parameter key.
        key: String,
        /// The rejected value.
        value: String,
        /// Human description of what was expected.
        expected: String,
    },
}

/// An error from parsing or validating a spec, with the domain's [`Vocab`]
/// attached so [`fmt::Display`] speaks the right language.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Word pack of the domain the error came from.
    pub vocab: &'static Vocab,
    /// What went wrong.
    pub kind: SpecErrorKind,
}

impl SpecError {
    /// Construct an error in the given domain.
    pub fn new(vocab: &'static Vocab, kind: SpecErrorKind) -> Self {
        SpecError { vocab, kind }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.vocab;
        match &self.kind {
            SpecErrorKind::Empty => write!(f, "empty {} spec", v.subject),
            SpecErrorKind::UnknownName { name, known } => write!(
                f,
                "unknown {} '{name}'; {}: {}",
                v.entity,
                v.known_label,
                known.join(", ")
            ),
            SpecErrorKind::UnknownParam { owner, key, known } => {
                if known.is_empty() {
                    write!(
                        f,
                        "{} '{owner}' takes no parameters, got '{key}'",
                        v.subject
                    )
                } else {
                    write!(
                        f,
                        "{} '{owner}' has no parameter '{key}'; known parameters: {}",
                        v.subject,
                        known.join(", ")
                    )
                }
            }
            SpecErrorKind::MalformedParam { fragment } => {
                write!(f, "malformed parameter '{fragment}' (expected key=value)")
            }
            SpecErrorKind::DuplicateParam { key } => {
                write!(f, "duplicate parameter '{key}' in {} spec", v.subject)
            }
            SpecErrorKind::InvalidCombination { owner, message } => write!(
                f,
                "invalid parameter combination for {} '{owner}': {message}",
                v.subject
            ),
            SpecErrorKind::InvalidValue {
                owner,
                key,
                value,
                expected,
            } => write!(
                f,
                "invalid value '{value}' for parameter '{key}' of {} '{owner}': expected {expected}",
                v.subject
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Split a raw `name:key=value,key=value` string into its name and parameter
/// map, without consulting any registry.
///
/// Whitespace around the name, keys and values is tolerated; malformed
/// fragments, duplicated keys and empty names are rejected.  Validation of the
/// name and the parameter values against declarations is the registry's job
/// ([`SpecTable::validate`]).
pub fn parse_spec(
    s: &str,
    vocab: &'static Vocab,
) -> Result<(String, BTreeMap<String, String>), SpecError> {
    let err = |kind| Err(SpecError::new(vocab, kind));
    let s = s.trim();
    if s.is_empty() {
        return err(SpecErrorKind::Empty);
    }
    let (name, rest) = match s.split_once(':') {
        Some((n, rest)) => (n.trim(), Some(rest)),
        None => (s, None),
    };
    if name.is_empty() {
        return err(SpecErrorKind::Empty);
    }
    let mut params = BTreeMap::new();
    if let Some(rest) = rest {
        for fragment in rest.split(',') {
            let fragment = fragment.trim();
            let Some((key, value)) = fragment.split_once('=') else {
                return err(SpecErrorKind::MalformedParam {
                    fragment: fragment.to_string(),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() || value.is_empty() {
                return err(SpecErrorKind::MalformedParam {
                    fragment: fragment.to_string(),
                });
            }
            if params.insert(key.to_string(), value.to_string()).is_some() {
                return err(SpecErrorKind::DuplicateParam {
                    key: key.to_string(),
                });
            }
        }
    }
    Ok((name.to_string(), params))
}

/// Print the canonical form of a spec: the name, then `:key=value` pairs in
/// map (sorted) order, comma-separated.  The inverse of [`parse_spec`] on
/// canonical input.
pub fn format_spec(
    f: &mut fmt::Formatter<'_>,
    name: &str,
    params: &BTreeMap<String, String>,
) -> fmt::Result {
    f.write_str(name)?;
    for (i, (k, v)) in params.iter().enumerate() {
        f.write_str(if i == 0 { ":" } else { "," })?;
        write!(f, "{k}={v}")?;
    }
    Ok(())
}

/// What a registry needs to know about a factory: its name and declared
/// parameters.  Domain factory traits (`PolicyFactory`, `WorkloadFactory`)
/// keep their own `name`/`doc`/`params` methods for source compatibility and
/// forward them to this trait from an `impl SpecFamily for dyn …Factory`.
pub trait SpecFamily: Send + Sync {
    /// The registry key; also the spec's name component.
    fn family_name(&self) -> &'static str;
    /// One-line description, shown by [`SpecTable::help`].
    fn family_doc(&self) -> &'static str;
    /// The parameters this factory accepts (empty slice: none).
    fn family_params(&self) -> &'static [ParamSpec];
}

/// The name-keyed factory table both domain registries wrap: registration,
/// lookup, declared-parameter validation and help-text rendering.
///
/// `F` is the domain's factory object type (e.g. `dyn PolicyFactory`); it must
/// implement [`SpecFamily`] so the table can read declarations.
pub struct SpecTable<F: SpecFamily + ?Sized> {
    vocab: &'static Vocab,
    entries: RwLock<BTreeMap<&'static str, Arc<F>>>,
}

impl<F: SpecFamily + ?Sized> SpecTable<F> {
    /// An empty table for the given domain.
    pub fn new(vocab: &'static Vocab) -> Self {
        SpecTable {
            vocab,
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    /// The domain's word pack (for callers building their own errors).
    pub fn vocab(&self) -> &'static Vocab {
        self.vocab
    }

    /// Add (or replace — last registration wins) a factory.
    pub fn register(&self, factory: Arc<F>) {
        self.entries
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(factory.family_name(), factory);
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .map(|k| k.to_string())
            .collect()
    }

    /// Look up one factory.
    pub fn get(&self, name: &str) -> Option<Arc<F>> {
        self.entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Validate a raw `(name, params)` pair against the named factory's
    /// declarations: the name must be registered, every key declared, and
    /// every value well-typed.  Returns the factory and the canonicalised
    /// parameters (e.g. `lag=007` → `lag=7`); cross-parameter constraints are
    /// the caller's (domain's) job.
    #[allow(clippy::type_complexity)]
    pub fn validate(
        &self,
        name: String,
        params: BTreeMap<String, String>,
    ) -> Result<(Arc<F>, BTreeMap<String, String>), SpecError> {
        let err = |kind| Err(SpecError::new(self.vocab, kind));
        let Some(factory) = self.get(&name) else {
            return err(SpecErrorKind::UnknownName {
                name,
                known: self.names(),
            });
        };
        let declared = factory.family_params();
        let mut canonical = BTreeMap::new();
        for (key, value) in params {
            let Some(decl) = declared.iter().find(|p| p.key == key) else {
                return err(SpecErrorKind::UnknownParam {
                    owner: name,
                    key,
                    known: declared.iter().map(|p| p.key.to_string()).collect(),
                });
            };
            match decl.kind.canonicalise(&value) {
                Ok(v) => {
                    canonical.insert(key, v);
                }
                Err(expected) => {
                    return err(SpecErrorKind::InvalidValue {
                        owner: name,
                        key,
                        value,
                        expected,
                    })
                }
            }
        }
        Ok((factory, canonical))
    }

    /// A human-readable listing of every registered factory and its
    /// parameters (what a `--list` for the spec grammar prints).
    pub fn help(&self) -> String {
        let entries = self
            .entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for factory in entries.values() {
            out.push_str(&format!(
                "{:<8} {}\n",
                factory.family_name(),
                factory.family_doc()
            ));
            for p in factory.family_params() {
                out.push_str(&format!(
                    "  {}=<{}>  {}\n",
                    p.key,
                    p.kind.help_token(),
                    p.doc
                ));
            }
        }
        out
    }
}

impl<F: SpecFamily + ?Sized> fmt::Debug for SpecTable<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecTable")
            .field("subject", &self.vocab.subject)
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_VOCAB: Vocab = Vocab {
        subject: "widget",
        entity: "widget kind",
        known_label: "known widgets",
    };

    #[derive(Debug)]
    struct Gear;
    impl SpecFamily for Gear {
        fn family_name(&self) -> &'static str {
            "gear"
        }
        fn family_doc(&self) -> &'static str {
            "a test factory"
        }
        fn family_params(&self) -> &'static [ParamSpec] {
            &[
                ParamSpec {
                    key: "teeth",
                    kind: ParamKind::U64,
                    doc: "number of teeth",
                },
                ParamSpec {
                    key: "bias",
                    kind: ParamKind::Fraction,
                    doc: "load bias",
                },
                ParamSpec {
                    key: "metal",
                    kind: ParamKind::Choice(&["steel", "brass"]),
                    doc: "material",
                },
                ParamSpec {
                    key: "width",
                    kind: ParamKind::PositiveF64,
                    doc: "face width in mm",
                },
            ]
        }
    }

    fn table() -> SpecTable<Gear> {
        let t = SpecTable::new(&TEST_VOCAB);
        t.register(Arc::new(Gear));
        t
    }

    #[test]
    fn grammar_splits_and_trims() {
        let (name, params) =
            parse_spec(" gear : teeth = 12 , metal = brass ", &TEST_VOCAB).unwrap();
        assert_eq!(name, "gear");
        assert_eq!(params.get("teeth").map(String::as_str), Some("12"));
        assert_eq!(params.get("metal").map(String::as_str), Some("brass"));
    }

    #[test]
    fn grammar_rejects_empty_malformed_and_duplicates() {
        let e = parse_spec("  ", &TEST_VOCAB).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Empty);
        assert_eq!(e.to_string(), "empty widget spec");
        let e = parse_spec(":x=1", &TEST_VOCAB).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Empty);
        let e = parse_spec("gear:teeth", &TEST_VOCAB).unwrap_err();
        assert!(matches!(e.kind, SpecErrorKind::MalformedParam { .. }));
        assert!(e.to_string().contains("expected key=value"), "{e}");
        let e = parse_spec("gear:teeth=1,teeth=2", &TEST_VOCAB).unwrap_err();
        assert!(matches!(e.kind, SpecErrorKind::DuplicateParam { .. }));
        assert!(e.to_string().contains("in widget spec"), "{e}");
    }

    #[test]
    fn validate_canonicalises_typed_values() {
        let t = table();
        let (name, raw) = parse_spec("gear:teeth=007,bias=0.50", &TEST_VOCAB).unwrap();
        let (_, canonical) = t.validate(name, raw).unwrap();
        assert_eq!(canonical.get("teeth").map(String::as_str), Some("7"));
        assert_eq!(canonical.get("bias").map(String::as_str), Some("0.5"));
    }

    #[test]
    fn positive_f64_accepts_positive_reals_and_infinity_only() {
        let t = table();
        let (name, raw) = parse_spec("gear:width=2.50", &TEST_VOCAB).unwrap();
        let (_, canonical) = t.validate(name, raw).unwrap();
        assert_eq!(canonical.get("width").map(String::as_str), Some("2.5"));
        let (name, raw) = parse_spec("gear:width=inf", &TEST_VOCAB).unwrap();
        let (_, canonical) = t.validate(name, raw).unwrap();
        assert_eq!(canonical.get("width").map(String::as_str), Some("inf"));
        for bad in ["0", "-1", "NaN", "wide"] {
            let (name, raw) = parse_spec(&format!("gear:width={bad}"), &TEST_VOCAB).unwrap();
            let e = t.validate(name, raw).unwrap_err();
            assert!(e.to_string().contains("a positive real number"), "{e}");
        }
    }

    #[test]
    fn validate_speaks_the_domain_vocabulary() {
        let t = table();
        let e = t.validate("sprocket".into(), BTreeMap::new()).unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown widget kind 'sprocket'; known widgets: gear"
        );
        let (name, raw) = parse_spec("gear:size=3", &TEST_VOCAB).unwrap();
        let e = t.validate(name, raw).unwrap_err();
        assert!(
            e.to_string()
                .starts_with("widget 'gear' has no parameter 'size'"),
            "{e}"
        );
        let (name, raw) = parse_spec("gear:bias=1.5", &TEST_VOCAB).unwrap();
        let e = t.validate(name, raw).unwrap_err();
        assert!(e.to_string().contains("a fraction between 0 and 1"), "{e}");
        let (name, raw) = parse_spec("gear:metal=wood", &TEST_VOCAB).unwrap();
        let e = t.validate(name, raw).unwrap_err();
        assert!(e.to_string().contains("one of steel, brass"), "{e}");
    }

    #[test]
    fn help_lists_names_params_and_kinds() {
        let help = table().help();
        assert!(help.contains("gear"), "{help}");
        assert!(help.contains("teeth=<u64>"), "{help}");
        assert!(help.contains("bias=<0..1>"), "{help}");
        assert!(help.contains("metal=<steel|brass>"), "{help}");
    }

    #[test]
    fn format_spec_is_the_inverse_of_parse_spec_on_canonical_input() {
        struct Disp(String, BTreeMap<String, String>);
        impl fmt::Display for Disp {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                format_spec(f, &self.0, &self.1)
            }
        }
        let (name, params) = parse_spec("gear:teeth=9,metal=steel", &TEST_VOCAB).unwrap();
        let printed = Disp(name.clone(), params.clone()).to_string();
        assert_eq!(printed, "gear:metal=steel,teeth=9");
        assert_eq!(parse_spec(&printed, &TEST_VOCAB).unwrap(), (name, params));
    }
}
