//! Tenants: who submits traffic, with what share, mix, and latency objective.
//!
//! A [`TenantSpec`] is expressed in the same `name:key=value` grammar as every
//! other axis, except the name is the tenant's own (free-form) identity rather
//! than a registry key:
//!
//! ```text
//! interactive:weight=3,slo=latency,p99=1500000,mix=class-a
//! batch:weight=1,slo=batch,mix=class-b
//! ```
//!
//! Several tenants join with `+` (shell-safe, no quoting needed):
//! `interactive:weight=3+batch:weight=1` — see [`parse_tenants`].
//!
//! * `weight` sets the tenant's deficit-round-robin share of dispatch
//!   bandwidth.
//! * `slo` names the objective class (`latency` or `batch`) and picks the
//!   default `p99` sojourn target; `p99` overrides it in cycles.
//! * `mix` picks the built-in workload mix the tenant's jobs are drawn from
//!   (`class-a`, `class-b`, or `mixed`).

use pdfws_spec::{SpecErrorKind, Vocab};
use pdfws_stream::JobMix;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Errors from parsing or validating a [`TenantSpec`].
pub type SpecError = pdfws_spec::SpecError;

/// The tenant domain's error wording.
static TENANT_VOCAB: Vocab = Vocab {
    subject: "tenant",
    entity: "tenant",
    known_label: "known tenants",
};

/// Default p99 sojourn target for `slo=latency` tenants (cycles).
pub const DEFAULT_LATENCY_P99_CYCLES: u64 = 2_000_000;
/// Default p99 sojourn target for `slo=batch` tenants (cycles).
pub const DEFAULT_BATCH_P99_CYCLES: u64 = 20_000_000;

/// One tenant of the serving tier: identity, fair-share weight, SLO class
/// with its p99 sojourn target, and the workload mix its jobs are drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    name: String,
    weight: u32,
    slo_class: String,
    p99_target_cycles: u64,
    mix_name: String,
}

impl TenantSpec {
    /// Build a tenant from parts, validating the same constraints parsing
    /// enforces.
    pub fn new(
        name: impl Into<String>,
        weight: u32,
        slo_class: &str,
        p99_target_cycles: u64,
        mix_name: &str,
    ) -> Result<Self, SpecError> {
        let mut params = BTreeMap::new();
        params.insert("weight".to_string(), weight.to_string());
        params.insert("slo".to_string(), slo_class.to_string());
        params.insert("p99".to_string(), p99_target_cycles.to_string());
        params.insert("mix".to_string(), mix_name.to_string());
        validate_tenant(name.into(), params)
    }

    /// The built-in pair most scenarios start from: a weight-3 `interactive`
    /// latency tenant on class-A traffic plus a weight-1 `batch` tenant on
    /// class-B traffic.
    pub fn default_pair() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(
                "interactive",
                3,
                "latency",
                DEFAULT_LATENCY_P99_CYCLES,
                "class-a",
            )
            .expect("built-in tenant is valid"),
            TenantSpec::new("batch", 1, "batch", DEFAULT_BATCH_P99_CYCLES, "class-b")
                .expect("built-in tenant is valid"),
        ]
    }

    /// The tenant's name (free-form identity, not a registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Deficit-round-robin dispatch weight (≥ 1).
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// The SLO class label (`"latency"` or `"batch"`) — stamped onto every
    /// job record the tenant's jobs produce.
    pub fn slo_class(&self) -> &str {
        &self.slo_class
    }

    /// The p99 sojourn target, in cycles.
    pub fn p99_target_cycles(&self) -> u64 {
        self.p99_target_cycles
    }

    /// Name of the built-in workload mix the tenant draws jobs from.
    pub fn mix_name(&self) -> &str {
        &self.mix_name
    }

    /// The tenant's workload mix, with every entry's SLO class stamped to
    /// this tenant's class.
    pub fn mix(&self) -> JobMix {
        let mix = match self.mix_name.as_str() {
            "class-a" => JobMix::class_a(),
            "class-b" => JobMix::class_b(),
            "mixed" => JobMix::mixed(),
            other => unreachable!("mix '{other}' passed validation"),
        };
        let classes: Vec<&str> = (0..mix.tenants())
            .map(|_| self.slo_class.as_str())
            .collect();
        mix.with_slo_classes(&classes)
    }
}

impl fmt::Display for TenantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut params = BTreeMap::new();
        params.insert("mix".to_string(), self.mix_name.clone());
        params.insert("p99".to_string(), self.p99_target_cycles.to_string());
        params.insert("slo".to_string(), self.slo_class.clone());
        params.insert("weight".to_string(), self.weight.to_string());
        pdfws_spec::format_spec(f, &self.name, &params)
    }
}

impl FromStr for TenantSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, params) = pdfws_spec::parse_spec(s, &TENANT_VOCAB)?;
        validate_tenant(name, params)
    }
}

fn invalid(owner: &str, message: String) -> SpecError {
    SpecError::new(
        &TENANT_VOCAB,
        SpecErrorKind::InvalidCombination {
            owner: owner.to_string(),
            message,
        },
    )
}

fn validate_tenant(
    name: String,
    params: BTreeMap<String, String>,
) -> Result<TenantSpec, SpecError> {
    let mut weight = 1u32;
    let mut slo_class = "latency".to_string();
    let mut p99: Option<u64> = None;
    let mut mix_name = "class-a".to_string();
    for (key, value) in &params {
        match key.as_str() {
            "weight" => {
                weight = value
                    .parse::<u32>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or_else(|| {
                        invalid(
                            &name,
                            format!("'weight' must be an integer >= 1, got '{value}'"),
                        )
                    })?;
            }
            "slo" => match value.as_str() {
                "latency" | "batch" => slo_class = value.clone(),
                other => {
                    return Err(invalid(
                        &name,
                        format!("'slo' must be 'latency' or 'batch', got '{other}'"),
                    ))
                }
            },
            "p99" => {
                p99 = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .ok_or_else(|| {
                            invalid(
                                &name,
                                format!("'p99' must be a cycle count >= 1, got '{value}'"),
                            )
                        })?,
                );
            }
            "mix" => match value.as_str() {
                "class-a" | "class-b" | "mixed" => mix_name = value.clone(),
                other => {
                    return Err(invalid(
                        &name,
                        format!("'mix' must be 'class-a', 'class-b' or 'mixed', got '{other}'"),
                    ))
                }
            },
            other => {
                return Err(invalid(
                    &name,
                    format!("tenant specs have no parameter '{other}' (weight, slo, p99, mix)"),
                ))
            }
        }
    }
    let p99_target_cycles = p99.unwrap_or(match slo_class.as_str() {
        "latency" => DEFAULT_LATENCY_P99_CYCLES,
        _ => DEFAULT_BATCH_P99_CYCLES,
    });
    Ok(TenantSpec {
        name,
        weight,
        slo_class,
        p99_target_cycles,
        mix_name,
    })
}

/// Parse a `+`-joined tenant list
/// (`"interactive:weight=3+batch:slo=batch"`) into specs, rejecting empty
/// lists and duplicate tenant names.
pub fn parse_tenants(s: &str) -> Result<Vec<TenantSpec>, SpecError> {
    let mut tenants = Vec::new();
    for part in s.split('+') {
        let tenant: TenantSpec = part.parse()?;
        if tenants
            .iter()
            .any(|t: &TenantSpec| t.name() == tenant.name())
        {
            return Err(invalid(
                tenant.name(),
                "tenant names must be unique in a tenant list".to_string(),
            ));
        }
        tenants.push(tenant);
    }
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fill_unset_parameters() {
        let t: TenantSpec = "web".parse().unwrap();
        assert_eq!(t.name(), "web");
        assert_eq!(t.weight(), 1);
        assert_eq!(t.slo_class(), "latency");
        assert_eq!(t.p99_target_cycles(), DEFAULT_LATENCY_P99_CYCLES);
        assert_eq!(t.mix_name(), "class-a");
        let t: TenantSpec = "nightly:slo=batch".parse().unwrap();
        assert_eq!(t.p99_target_cycles(), DEFAULT_BATCH_P99_CYCLES);
    }

    #[test]
    fn explicit_parameters_override_and_round_trip() {
        let t: TenantSpec = "api:weight=5,slo=latency,p99=900000,mix=mixed"
            .parse()
            .unwrap();
        assert_eq!(t.weight(), 5);
        assert_eq!(t.p99_target_cycles(), 900_000);
        assert_eq!(t.mix_name(), "mixed");
        let display = t.to_string();
        assert_eq!(display, "api:mix=mixed,p99=900000,slo=latency,weight=5");
        let again: TenantSpec = display.parse().unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn bad_values_are_rejected() {
        for bad in [
            "t:weight=0",
            "t:weight=fast",
            "t:slo=besteffort",
            "t:p99=0",
            "t:mix=class-z",
            "t:priority=1",
        ] {
            assert!(bad.parse::<TenantSpec>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn tenant_mixes_carry_the_slo_class() {
        let t: TenantSpec = "web:slo=latency,mix=class-b".parse().unwrap();
        let mix = t.mix();
        assert_eq!(mix.tenants(), JobMix::class_b().tenants());
        assert!(mix.slo_classes().iter().all(|c| c == "latency"));
        let jobs = mix.generate(4, 1);
        assert!(jobs.iter().all(|j| j.slo_class == "latency"));
    }

    #[test]
    fn plus_joined_lists_parse_and_reject_duplicates() {
        let tenants = parse_tenants("interactive:weight=3+batch:slo=batch,weight=1").unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].name(), "interactive");
        assert_eq!(tenants[1].slo_class(), "batch");
        let err = parse_tenants("a+a:weight=2").unwrap_err();
        assert!(err.to_string().contains("unique"), "{err}");
    }

    #[test]
    fn default_pair_is_an_interactive_batch_split() {
        let pair = TenantSpec::default_pair();
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].name(), "interactive");
        assert!(pair[0].weight() > pair[1].weight());
        assert!(pair[0].p99_target_cycles() < pair[1].p99_target_cycles());
    }
}
