//! The serving loop: calibrated processor-sharing over streaming arrivals.
//!
//! Driving every job of a 10⁶–10⁷-job day through the cycle-level engine
//! would take hours; the serving tier instead splits the work in two:
//!
//! 1. **Calibration** — every (tenant, mix template, size multiplier) job
//!    shape is run *once* through the real [`SimEngine`] at every core level
//!    the autoscaler may select, honouring the configured scheduler, cache
//!    mode, and memory system.  The measured completion cycles become the
//!    job shape's service requirement at that level.
//! 2. **Serving** — a fluid *generalized processor sharing* (GPS) event
//!    loop replays the arrival stream against those calibrated service
//!    times.  The machine's capacity is split across the tenants that have
//!    active jobs in proportion to their weights, and within a tenant the
//!    slice goes wholly to the *oldest* active job (FIFO).  Weighted
//!    sharing is what makes tenants *isolated*: a flood of loose-SLO batch
//!    work cannot dilute an interactive tenant below its guaranteed share.
//!    FIFO within the tenant is what makes sojourns *predictable*: a job's
//!    finish time is bounded by draining the tenant work ahead of it at the
//!    guaranteed rate, which is exactly the quantity the admission
//!    estimator computes — so its raw prediction is a genuine upper bound.
//!    A level change rescales every in-flight job's remaining work by the
//!    ratio of its calibrated service times.  Between-job cache
//!    interference beyond what calibration captured is deliberately out of
//!    scope at this tier — the exact per-quantum model stays available in
//!    `pdfws-stream`.
//!
//! Around that core sit the serving-tier policies: per-tenant
//! deficit-round-robin dispatch, a tail-corrected admission estimator that
//! sheds jobs predicted to violate their tenant's p99 sojourn target
//! (predictions are denominated in the tenant's own backlog over its
//! *guaranteed* GPS share, corrected by a streaming p99 of each tenant's
//! realised prediction error), and a hysteresis [`Autoscaler`] stepping
//! through core levels.  All
//! per-job statistics fold into constant-size [`StreamingQuantiles`], so
//! memory use is independent of the job count.

use crate::arrival_spec::ArrivalSpec;
use crate::autoscale::{AutoscalePolicy, Autoscaler};
use crate::tenant::TenantSpec;
use pdfws_cmp_model::{default_config, CmpConfig, MemSysParams, ModelError};
use pdfws_metrics::{P2Quantile, Quantiles, Series, StreamingQuantiles, Table};
use pdfws_schedulers::{make_policy, SchedulerSpec, SimEngine, SimOptions};
use pdfws_trace::{TraceEvent, TraceSink};
use pdfws_workloads::{WorkloadRegistry, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Size multipliers the job sampler draws from (matching
/// [`JobMix::generate`]'s `1..=4` scaling).
const SCALES: u64 = 4;

/// Sub-cycle slack when deciding a fluid job has finished.
const REMAINING_EPS: f64 = 1e-3;

/// Most scale decisions kept verbatim in the report (the count is always
/// exact; the log is capped so sustained runs stay constant-memory).
const SCALE_LOG_CAP: usize = 32;

/// Configuration of one serving run.  Mirrors `StreamConfig`'s plain-struct
/// style: construct with [`ServeConfig::new`], then set fields directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cores of the machine at full capacity (the autoscaler's top rung).
    pub cores: usize,
    /// Scheduler calibration runs under (any registered spec).
    pub scheduler: SchedulerSpec,
    /// The arrival process; must be open loop.
    pub arrivals: ArrivalSpec,
    /// The tenants sharing the tier (offered traffic splits evenly across
    /// tenants; `weight` governs *dispatch* share, not arrival share).
    pub tenants: Vec<TenantSpec>,
    /// Jobs to offer before draining and reporting.
    pub jobs: usize,
    /// Whether the SLO-aware shedder is active; when off, every arrival is
    /// queued no matter how far behind the tier is (the overload baseline).
    pub shedding: bool,
    /// Shed when the predicted sojourn exceeds `target * slo_headroom`; 1.0
    /// sheds exactly at the target, lower values shed earlier.
    pub slo_headroom: f64,
    /// The core-autoscaling policy; `None` pins the tier at `cores`.
    pub autoscale: Option<AutoscalePolicy>,
    /// Most jobs sharing the machine at once (the processor-sharing
    /// multiprogramming level; the fluid analogue of `max_concurrent`).
    pub max_active: usize,
    /// Deficit-round-robin quantum in estimated-service cycles credited per
    /// tenant weight per dispatch round.
    pub drr_quantum_cycles: u64,
    /// Engine options for calibration runs (the cache-mode axis applies
    /// here).
    pub sim_options: SimOptions,
    /// Memory-system override for calibration machines.
    pub memsys: Option<MemSysParams>,
    /// Seed for arrival generation and job sampling.
    pub seed: u64,
}

impl ServeConfig {
    /// Defaults: Poisson 40 jobs/Mcycle over the
    /// [`TenantSpec::default_pair`], 4096 offered jobs, shedding on at
    /// headroom 1.0, autoscaling over [`AutoscalePolicy::for_cores`],
    /// multiprogramming level `2 * cores`, 50k-cycle DRR quantum, seed 42.
    pub fn new(cores: usize, scheduler: SchedulerSpec) -> Self {
        ServeConfig {
            cores,
            scheduler,
            arrivals: ArrivalSpec::poisson(40.0),
            tenants: TenantSpec::default_pair(),
            jobs: 4096,
            shedding: true,
            slo_headroom: 1.0,
            autoscale: Some(AutoscalePolicy::for_cores(cores)),
            max_active: 2 * cores.max(1),
            drr_quantum_cycles: 50_000,
            sim_options: SimOptions::default(),
            memsys: None,
            seed: 42,
        }
    }
}

/// Assert the config invariants the serving loop requires.
///
/// # Panics
///
/// Panics on closed-loop arrivals, an empty tenant list, zero jobs or slots,
/// a non-positive headroom, a zero DRR quantum, or an autoscale ladder whose
/// top rung is not `cores`.
pub fn validate_serve_cfg(cfg: &ServeConfig) {
    assert!(
        cfg.arrivals.is_open_loop(),
        "the serving tier needs an open-loop arrival spec, got '{}'",
        cfg.arrivals
    );
    assert!(!cfg.tenants.is_empty(), "need at least one tenant");
    assert!(cfg.jobs > 0, "need at least one offered job");
    assert!(cfg.max_active > 0, "need at least one serving slot");
    assert!(
        cfg.slo_headroom > 0.0,
        "slo_headroom must be positive, got {}",
        cfg.slo_headroom
    );
    assert!(cfg.drr_quantum_cycles > 0, "DRR quantum must be positive");
    if let Some(policy) = &cfg.autoscale {
        policy.validate();
        assert_eq!(
            *policy.levels.last().expect("validated ladder is non-empty"),
            cfg.cores,
            "the autoscale ladder's top rung must be the machine's cores"
        );
    }
}

/// One tenant's calibrated templates: the parsed mix entries plus the
/// measured alone-run service cycles per (entry, scale, level).
struct TenantTables {
    entries: Vec<(WorkloadSpec, u32)>,
    entry_weight_total: u64,
    /// `service[entry][scale - 1][level_idx]` — alone-run cycles.
    service: Vec<Vec<Vec<u64>>>,
}

/// Calibrated machine: core levels plus per-tenant service tables.
struct Calibration {
    levels: Vec<usize>,
    tenants: Vec<TenantTables>,
}

impl Calibration {
    fn level_idx(&self, cores: usize) -> usize {
        self.levels
            .iter()
            .position(|&c| c == cores)
            .expect("autoscaler only selects calibrated levels")
    }

    fn service(&self, tenant: usize, entry: usize, scale: u64, level_idx: usize) -> u64 {
        self.tenants[tenant].service[entry][(scale - 1) as usize][level_idx]
    }
}

/// Run every job shape once per core level through the real engine.
fn calibrate(cfg: &ServeConfig, levels: &[usize]) -> Result<Calibration, ModelError> {
    let mut machines: Vec<CmpConfig> = Vec::with_capacity(levels.len());
    for &cores in levels {
        let mut machine = default_config(cores)?;
        if let Some(memsys) = cfg.memsys {
            machine.memsys = memsys;
            machine.validate()?;
        }
        machines.push(machine);
    }
    let mut tenants = Vec::with_capacity(cfg.tenants.len());
    for (t, tenant) in cfg.tenants.iter().enumerate() {
        let mix = tenant.mix();
        let entries: Vec<(WorkloadSpec, u32)> =
            mix.entries().map(|(s, w)| (s.clone(), w)).collect();
        let entry_weight_total = entries.iter().map(|&(_, w)| w as u64).sum();
        let mut service = Vec::with_capacity(entries.len());
        for (e, (spec, _)) in entries.iter().enumerate() {
            let factory = WorkloadRegistry::global()
                .factory(spec.name())
                .unwrap_or_else(|| panic!("workload '{}' is not in the registry", spec.name()));
            let mut per_scale = Vec::with_capacity(SCALES as usize);
            for scale in 1..=SCALES {
                // One fixed DAG per job shape: deterministic, and the same
                // shape every arrival of this (tenant, entry, scale) reuses.
                let calib_seed =
                    cfg.seed ^ 0xCA11_B8A7 ^ ((t as u64) << 32 | (e as u64) << 16 | scale);
                let shaped = factory.reseed(&factory.scale(spec, scale), calib_seed);
                let dag = std::sync::Arc::new(shaped.build().build_dag());
                let mut per_level = Vec::with_capacity(levels.len());
                for machine in &machines {
                    let mut engine = SimEngine::with_shared_dag(
                        dag.clone(),
                        machine,
                        make_policy(&cfg.scheduler, machine.cores),
                        cfg.sim_options.clone(),
                    );
                    per_level.push(engine.run().cycles.max(1));
                }
                per_scale.push(per_level);
            }
            service.push(per_scale);
        }
        tenants.push(TenantTables {
            entries,
            entry_weight_total,
            service,
        });
    }
    Ok(Calibration {
        levels: levels.to_vec(),
        tenants,
    })
}

/// A job waiting in its tenant's dispatch queue.
struct QueuedJob {
    id: u64,
    entry: usize,
    scale: u64,
    arrival: f64,
    /// Raw (uncorrected) sojourn prediction made at arrival, for the EWMA.
    raw_prediction: f64,
}

/// A job currently sharing the machine.
struct ActiveJob {
    id: u64,
    tenant: usize,
    entry: usize,
    scale: u64,
    arrival: f64,
    /// Alone-run cycles still owed at the current core level.
    remaining: f64,
    raw_prediction: f64,
}

/// Constant-size per-tenant accumulator.
#[derive(Default)]
struct TenantStats {
    offered: u64,
    shed: u64,
    completed: u64,
    slo_met: u64,
    sojourn: StreamingQuantiles,
}

/// Drive one serving run (see the module docs for the model).
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeReport, ModelError> {
    serve_impl(cfg, None)
}

/// [`run_serve`] with a trace sink: emits `JobAdmit` / `JobComplete` /
/// `JobShed` job-lifecycle events plus the `OutstandingJobs` and
/// `ActiveCores` counter tracks.  Tracing never perturbs the run.
pub fn run_serve_traced(
    cfg: &ServeConfig,
    sink: &mut dyn TraceSink,
) -> Result<ServeReport, ModelError> {
    serve_impl(cfg, Some(sink))
}

fn serve_impl(
    cfg: &ServeConfig,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<ServeReport, ModelError> {
    validate_serve_cfg(cfg);
    let levels: Vec<usize> = cfg
        .autoscale
        .as_ref()
        .map(|p| p.levels.clone())
        .unwrap_or_else(|| vec![cfg.cores]);
    let calib = calibrate(cfg, &levels)?;
    let mut scaler = cfg.autoscale.clone().map(Autoscaler::new);

    let n_tenants = cfg.tenants.len();
    let mut gen = cfg
        .arrivals
        .generator(cfg.seed)
        .expect("validated open-loop spec");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5E2E_7E4A);

    let mut queues: Vec<VecDeque<QueuedJob>> = (0..n_tenants).map(|_| VecDeque::new()).collect();
    let mut deficits: Vec<f64> = vec![0.0; n_tenants];
    let mut drr_cursor = 0usize;
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut stats: Vec<TenantStats> = (0..n_tenants).map(|_| TenantStats::default()).collect();

    // GPS shares: tenant `t` is guaranteed `weights[t] / w_all` of the
    // machine whenever it has active jobs (more when other tenants idle).
    let weights: Vec<f64> = cfg.tenants.iter().map(|t| t.weight() as f64).collect();
    let w_all: f64 = weights.iter().sum();
    let mut n_active: Vec<usize> = vec![0; n_tenants];
    // Serving slots are partitioned by weight too (min 1 each).  Shared
    // slots would let slow-draining batch jobs occupy every slot and make an
    // interactive job's *activation* wait depend on other tenants — the one
    // delay the GPS guarantee cannot bound, and therefore the admission
    // estimator could not predict.
    let quotas: Vec<usize> = weights
        .iter()
        .map(|w| ((cfg.max_active as f64 * w / w_all).floor() as usize).max(1))
        .collect();

    let mut level_idx = calib.level_idx(scaler.as_ref().map_or(cfg.cores, Autoscaler::cores));
    let mut now = 0.0f64;
    let mut offered = 0usize;
    let mut resolved = 0usize; // completed + shed
    let mut queued_total = 0usize;
    // Estimated service cycles waiting in each tenant's queue.
    let mut queued_backlog: Vec<f64> = vec![0.0; n_tenants];
    let mut next_arrival = gen.next_arrival() as f64;
    // The admission estimator's learned correction, per tenant: a streaming
    // P² tail quantile of the realised `sojourn / raw_prediction` ratio.
    // With FIFO service inside each tenant the raw prediction is already an
    // upper bound at a fixed core level, so the correction usually sits at
    // its 1.0 floor; it exists to absorb what the bound does not cover —
    // autoscale re-denomination of in-flight work mid-sojourn.  The SLO is
    // a p99, so the tracker follows the *tail* of the error, not its mean:
    // an average-tracking correction admits borderline jobs whose worst
    // few percent still miss.  The 1.0 floor means a stretch of idle
    // competitors can never teach the estimator to predict better than the
    // guaranteed share.
    let mut error_tail: Vec<P2Quantile> = (0..n_tenants).map(|_| P2Quantile::new(0.99)).collect();
    let correction = |tracker: &P2Quantile| tracker.estimate().max(1.0);
    let mut peak_active = 0usize;
    let mut last_outstanding: Option<u64> = None;
    let mut core_cycles = 0.0f64; // ∫ cores dt
    let mut last_core_t = 0.0f64;
    let mut scale_events = 0u64;
    let mut scale_log: Vec<(u64, usize)> = Vec::new();

    if let Some(s) = sink.as_deref_mut() {
        s.emit(TraceEvent::ActiveCores {
            t: 0,
            cores: calib.levels[level_idx] as u64,
        });
    }

    macro_rules! outstanding {
        ($s:expr, $t:expr) => {
            let jobs_now = active.len() as u64;
            if last_outstanding != Some(jobs_now) {
                last_outstanding = Some(jobs_now);
                $s.emit(TraceEvent::OutstandingJobs {
                    t: $t as u64,
                    jobs: jobs_now,
                });
            }
        };
    }

    while resolved < cfg.jobs {
        // 1. Deficit-round-robin dispatch into free slots (each tenant
        // bounded by its slot quota).  Deficits grow by quantum * weight per
        // visited round, so a head job larger than one quantum still
        // dispatches after enough rounds — large jobs are delayed
        // proportionally to their size, never starved.
        n_active.iter_mut().for_each(|n| *n = 0);
        for job in &active {
            n_active[job.tenant] += 1;
        }
        loop {
            let dispatchable = |t: usize| !queues[t].is_empty() && n_active[t] < quotas[t];
            if !(0..n_tenants).any(dispatchable) {
                break;
            }
            for _ in 0..n_tenants {
                let t = drr_cursor;
                drr_cursor = (drr_cursor + 1) % n_tenants;
                if queues[t].is_empty() {
                    // An idle tenant banks no credit (classic DRR).
                    deficits[t] = 0.0;
                    continue;
                }
                if n_active[t] >= quotas[t] {
                    continue;
                }
                deficits[t] += cfg.drr_quantum_cycles as f64 * cfg.tenants[t].weight() as f64;
                while n_active[t] < quotas[t] {
                    let Some(head) = queues[t].front() else { break };
                    let est = calib.service(t, head.entry, head.scale, level_idx) as f64;
                    if est > deficits[t] {
                        break;
                    }
                    deficits[t] -= est;
                    let job = queues[t].pop_front().expect("head exists");
                    queued_total -= 1;
                    queued_backlog[t] = (queued_backlog[t] - est).max(0.0);
                    if let Some(s) = sink.as_deref_mut() {
                        s.emit(TraceEvent::JobAdmit {
                            t: now as u64,
                            job: job.id,
                        });
                    }
                    active.push(ActiveJob {
                        id: job.id,
                        tenant: t,
                        entry: job.entry,
                        scale: job.scale,
                        arrival: job.arrival,
                        remaining: est,
                        raw_prediction: job.raw_prediction,
                    });
                    n_active[t] += 1;
                }
            }
            // Un-dispatchable heads only grow their deficits; loop again.
        }
        peak_active = peak_active.max(active.len());
        if let Some(s) = sink.as_deref_mut() {
            outstanding!(s, now);
        }

        // 2. Pick the next event: completion, autoscale tick, or arrival.
        // GPS rates hold constant between events: busy tenants split the
        // machine by weight, and within a tenant the whole slice serves its
        // oldest active job (FIFO, by admission order = job id), so tenant
        // `t`'s head progresses at `weights[t] / w_busy` alone-cycles per
        // cycle and every other active job of `t` waits.
        let k = active.len();
        n_active.iter_mut().for_each(|n| *n = 0);
        let mut head: Vec<Option<usize>> = vec![None; n_tenants];
        for (i, job) in active.iter().enumerate() {
            n_active[job.tenant] += 1;
            match head[job.tenant] {
                Some(h) if active[h].id <= job.id => {}
                _ => head[job.tenant] = Some(i),
            }
        }
        let w_busy: f64 = (0..n_tenants)
            .filter(|&t| n_active[t] > 0)
            .map(|t| weights[t])
            .sum();
        let t_complete = if k > 0 {
            let horizon = head
                .iter()
                .enumerate()
                .filter_map(|(t, h)| {
                    h.map(|h| active[h].remaining.max(0.0) * (w_busy / weights[t]))
                })
                .fold(f64::INFINITY, f64::min);
            now + horizon
        } else {
            f64::INFINITY
        };
        let t_tick = scaler
            .as_ref()
            .map_or(f64::INFINITY, |s| (s.next_eval() as f64).max(now));
        let t_arrival = if offered < cfg.jobs {
            next_arrival.max(now)
        } else {
            f64::INFINITY
        };
        let t_event = t_complete.min(t_tick).min(t_arrival);
        assert!(
            t_event.is_finite(),
            "serving loop stalled: {resolved} of {} jobs resolved, {} active, {} queued",
            cfg.jobs,
            k,
            queued_total
        );

        // 3. Advance the fluid shares to the event time.
        if k > 0 && t_event > now {
            let dt = t_event - now;
            for (t, h) in head.iter().enumerate() {
                if let Some(h) = *h {
                    active[h].remaining -= dt * (weights[t] / w_busy);
                }
            }
        }
        core_cycles += (t_event - last_core_t) * calib.levels[level_idx] as f64;
        last_core_t = t_event;
        now = t_event;

        // 4a. Completions.
        if t_event == t_complete {
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining > REMAINING_EPS {
                    i += 1;
                    continue;
                }
                let done = active.swap_remove(i);
                let sojourn = (now - done.arrival).max(0.0);
                let st = &mut stats[done.tenant];
                st.completed += 1;
                st.sojourn.observe(sojourn);
                if sojourn <= cfg.tenants[done.tenant].p99_target_cycles() as f64 {
                    st.slo_met += 1;
                }
                // Fold the realised sojourn into the tenant's estimator.
                if done.raw_prediction > 0.0 {
                    let ratio = (sojourn / done.raw_prediction).clamp(0.1, 20.0);
                    error_tail[done.tenant].observe(ratio);
                }
                resolved += 1;
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(TraceEvent::JobComplete {
                        t: now as u64,
                        job: done.id,
                    });
                    outstanding!(s, now);
                }
            }
        }

        // 4b. Autoscale tick.
        if let Some(scaler) = scaler.as_mut() {
            if t_event == t_tick {
                if let Some(new_cores) = scaler.observe(now as u64, active.len() + queued_total) {
                    let new_idx = calib.level_idx(new_cores);
                    // Rescale in-flight work: keep each job's completed
                    // *fraction*, re-denominated in the new level's service.
                    for job in &mut active {
                        let old = calib.service(job.tenant, job.entry, job.scale, level_idx) as f64;
                        let new = calib.service(job.tenant, job.entry, job.scale, new_idx) as f64;
                        job.remaining = (job.remaining / old).max(0.0) * new;
                    }
                    level_idx = new_idx;
                    // Queued estimates change denomination too.
                    for (t, queue) in queues.iter().enumerate() {
                        queued_backlog[t] = queue
                            .iter()
                            .map(|j| calib.service(t, j.entry, j.scale, level_idx) as f64)
                            .sum();
                    }
                    scale_events += 1;
                    if scale_log.len() < SCALE_LOG_CAP {
                        scale_log.push((now as u64, new_cores));
                    }
                    if let Some(s) = sink.as_deref_mut() {
                        s.emit(TraceEvent::ActiveCores {
                            t: now as u64,
                            cores: new_cores as u64,
                        });
                    }
                }
            }
        }

        // 4c. Arrival: sample the job shape, then admit or shed.
        if t_event == t_arrival && offered < cfg.jobs {
            let id = offered as u64;
            offered += 1;
            next_arrival = (gen.next_arrival() as f64).max(next_arrival);
            // Offered traffic splits evenly across tenants; the tenant's mix
            // weights pick the template, and sizes scale 1..=4 uniformly
            // (matching JobMix::generate's heterogeneity).
            let tenant = rng.gen_range(0..n_tenants as u64) as usize;
            let tables = &calib.tenants[tenant];
            let mut pick = rng.gen_range(0..tables.entry_weight_total);
            let mut entry = 0usize;
            for (i, &(_, w)) in tables.entries.iter().enumerate() {
                if pick < w as u64 {
                    entry = i;
                    break;
                }
                pick -= w as u64;
            }
            let scale = rng.gen_range(1u64..=SCALES);
            stats[tenant].offered += 1;

            let est = calib.service(tenant, entry, scale, level_idx) as f64;
            // Predicted sojourn, denominated per tenant: GPS guarantees the
            // tenant at least `weights/w_all` of the machine while it is
            // busy, so its own in-flight plus queued backlog (plus this job)
            // drains in at most that many cycles — other tenants' traffic
            // cannot stretch it, which is what makes the bound usable.  The
            // per-tenant EWMA folds realised error back in: under-use of the
            // guarantee (other tenants idle) pulls it below 1, same-tenant
            // queueing behind this job pushes it above.
            let tenant_active: f64 = active
                .iter()
                .filter(|j| j.tenant == tenant)
                .map(|j| j.remaining.max(0.0))
                .sum();
            let raw_prediction =
                (tenant_active + queued_backlog[tenant] + est) * (w_all / weights[tenant]);
            let predicted = raw_prediction * correction(&error_tail[tenant]);
            let target = cfg.tenants[tenant].p99_target_cycles() as f64;
            if cfg.shedding && predicted > target * cfg.slo_headroom {
                stats[tenant].shed += 1;
                resolved += 1;
                if let Some(s) = sink.as_deref_mut() {
                    s.emit(TraceEvent::JobShed {
                        t: now as u64,
                        job: id,
                    });
                }
            } else {
                queues[tenant].push_back(QueuedJob {
                    id,
                    entry,
                    scale,
                    arrival: now,
                    raw_prediction,
                });
                queued_total += 1;
                queued_backlog[tenant] += est;
            }
        }
    }

    let makespan_cycles = now as u64;
    let tenants = cfg
        .tenants
        .iter()
        .zip(&stats)
        .map(|(spec, st)| {
            let admitted = st.offered - st.shed;
            TenantReport {
                name: spec.name().to_string(),
                slo_class: spec.slo_class().to_string(),
                p99_target_cycles: spec.p99_target_cycles(),
                offered: st.offered,
                admitted,
                shed: st.shed,
                completed: st.completed,
                shed_rate: if st.offered == 0 {
                    0.0
                } else {
                    st.shed as f64 / st.offered as f64
                },
                slo_attainment: if st.completed == 0 {
                    0.0
                } else {
                    st.slo_met as f64 / st.completed as f64
                },
                sojourn: st.sojourn.quantiles(),
                goodput_jobs_per_mcycle: if makespan_cycles == 0 {
                    0.0
                } else {
                    st.slo_met as f64 * 1.0e6 / makespan_cycles as f64
                },
            }
        })
        .collect();
    Ok(ServeReport {
        scheduler: cfg.scheduler.clone(),
        arrivals: cfg.arrivals.canonical(),
        shedding: cfg.shedding,
        offered: offered as u64,
        completed: stats.iter().map(|s| s.completed).sum(),
        shed: stats.iter().map(|s| s.shed).sum(),
        makespan_cycles,
        peak_active,
        mean_active_cores: if makespan_cycles == 0 {
            calib.levels[level_idx] as f64
        } else {
            core_cycles / now
        },
        final_cores: calib.levels[level_idx],
        scale_events,
        scale_log,
        tenants,
    })
}

/// One tenant's share of a [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// SLO class label (`"latency"` / `"batch"`).
    pub slo_class: String,
    /// The tenant's p99 sojourn target, in cycles.
    pub p99_target_cycles: u64,
    /// Jobs the arrival process offered to this tenant.
    pub offered: u64,
    /// Offered minus shed.
    pub admitted: u64,
    /// Jobs rejected by the SLO-aware shedder.
    pub shed: u64,
    /// Admitted jobs that ran to completion.
    pub completed: u64,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// Fraction of completed jobs whose sojourn met the p99 target.
    pub slo_attainment: f64,
    /// Streaming sojourn quantiles over completed jobs, in cycles.
    pub sojourn: Quantiles,
    /// SLO-met completions per million cycles of makespan.
    pub goodput_jobs_per_mcycle: f64,
}

impl TenantReport {
    /// The admitted-traffic p99 sojourn as a multiple of the target
    /// (`< 1.0` means the SLO held at the 99th percentile).
    pub fn p99_over_target(&self) -> f64 {
        self.sojourn.p99 / self.p99_target_cycles as f64
    }
}

/// Results of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scheduler calibration ran under.
    pub scheduler: SchedulerSpec,
    /// Canonical arrival spec string.
    pub arrivals: String,
    /// Whether the shedder was active.
    pub shedding: bool,
    /// Total offered jobs.
    pub offered: u64,
    /// Total completions.
    pub completed: u64,
    /// Total sheds.
    pub shed: u64,
    /// Cycle the last job resolved at.
    pub makespan_cycles: u64,
    /// Largest number of co-resident jobs.
    pub peak_active: usize,
    /// Time-weighted mean of cores powered on.
    pub mean_active_cores: f64,
    /// Cores online when the run ended.
    pub final_cores: usize,
    /// Number of autoscale level changes.
    pub scale_events: u64,
    /// The first 32 scale decisions as `(cycle, cores)`
    /// (capped so sustained runs stay constant-memory; `scale_events` is
    /// always the exact count).
    pub scale_log: Vec<(u64, usize)>,
    /// Per-tenant breakdown, in config order.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Overall `shed / offered`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// One tenant's report, by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// The worst tenant's [`TenantReport::p99_over_target`] (0.0 when no
    /// tenant completed a job).
    pub fn worst_p99_over_target(&self) -> f64 {
        self.tenants
            .iter()
            .filter(|t| t.completed > 0)
            .map(TenantReport::p99_over_target)
            .fold(0.0, f64::max)
    }

    /// Render the per-tenant breakdown as one [`Table`]: one row per tenant,
    /// one series per serving quantity — the table the `serve` binary and
    /// the artifact renderers share.
    pub fn summary_table(&self) -> Table {
        let x: Vec<String> = self.tenants.iter().map(|t| t.name.clone()).collect();
        let mut table = Table::new(
            format!(
                "Serving tier ({} arrivals, scheduler {}, shedding {}): per-tenant summary",
                self.arrivals,
                self.scheduler.canonical(),
                if self.shedding { "on" } else { "off" },
            ),
            "tenant",
            x,
        );
        let col = |name: &str, f: &dyn Fn(&TenantReport) -> f64| {
            Series::new(name, self.tenants.iter().map(f).collect())
        };
        table.push_series(col("p50_sojourn_kcyc", &|t| t.sojourn.p50 / 1_000.0));
        table.push_series(col("p95_sojourn_kcyc", &|t| t.sojourn.p95 / 1_000.0));
        table.push_series(col("p99_sojourn_kcyc", &|t| t.sojourn.p99 / 1_000.0));
        table.push_series(col("p99_target_kcyc", &|t| {
            t.p99_target_cycles as f64 / 1_000.0
        }));
        table.push_series(col("shed_rate", &|t| t.shed_rate));
        table.push_series(col("slo_attainment", &|t| t.slo_attainment));
        table.push_series(col("goodput_jobs_per_mcyc", &|t| t.goodput_jobs_per_mcycle));
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdfws_trace::EventTrace;

    /// A small machine with a single core level so tests calibrate quickly.
    fn quick_cfg(jobs: usize, rate: f64) -> ServeConfig {
        let mut cfg = ServeConfig::new(4, SchedulerSpec::pdf());
        cfg.jobs = jobs;
        cfg.arrivals = ArrivalSpec::poisson(rate);
        cfg.autoscale = None;
        cfg
    }

    #[test]
    fn every_offered_job_is_resolved_exactly_once() {
        let report = run_serve(&quick_cfg(300, 30.0)).unwrap();
        assert_eq!(report.offered, 300);
        assert_eq!(report.completed + report.shed, 300);
        let by_tenant: u64 = report.tenants.iter().map(|t| t.offered).sum();
        assert_eq!(by_tenant, 300);
        for t in &report.tenants {
            assert_eq!(t.admitted, t.offered - t.shed);
            assert_eq!(t.completed, t.admitted, "no jobs left behind");
            assert!(t.sojourn.p99 >= t.sojourn.p50);
        }
        assert!(report.peak_active >= 1);
        assert!(report.makespan_cycles > 0);
    }

    #[test]
    fn serving_runs_are_deterministic() {
        let a = run_serve(&quick_cfg(250, 60.0)).unwrap();
        let b = run_serve(&quick_cfg(250, 60.0)).unwrap();
        assert_eq!(a, b);
        let mut other = quick_cfg(250, 60.0);
        other.seed = 43;
        assert_ne!(run_serve(&other).unwrap(), a);
    }

    #[test]
    fn overload_sheds_while_light_load_does_not() {
        // Far beyond capacity: the shedder must engage...
        let overload = run_serve(&quick_cfg(600, 2_000.0)).unwrap();
        assert!(
            overload.shed_rate() > 0.2,
            "expected heavy shedding, got {}",
            overload.shed_rate()
        );
        // ...and the traffic it does admit meets the p99 target.
        assert!(
            overload.worst_p99_over_target() <= 1.0,
            "admitted p99 blew the target: {:?}",
            overload
                .tenants
                .iter()
                .map(TenantReport::p99_over_target)
                .collect::<Vec<_>>()
        );
        // A lightly-loaded tier sheds nothing.
        let light = run_serve(&quick_cfg(200, 2.0)).unwrap();
        assert_eq!(light.shed, 0, "light load must not shed");
    }

    #[test]
    fn disabling_the_shedder_violates_the_slo_under_overload() {
        let mut baseline = quick_cfg(600, 2_000.0);
        baseline.shedding = false;
        let report = run_serve(&baseline).unwrap();
        assert_eq!(report.shed, 0);
        assert!(
            report.worst_p99_over_target() > 1.0,
            "an unshed overload should violate the p99 target, got {}",
            report.worst_p99_over_target()
        );
    }

    #[test]
    fn autoscaler_powers_down_a_lightly_loaded_tier() {
        let mut cfg = ServeConfig::new(8, SchedulerSpec::pdf());
        cfg.jobs = 200;
        cfg.arrivals = ArrivalSpec::poisson(1.0);
        let report = run_serve(&cfg).unwrap();
        assert!(
            report.final_cores < 8,
            "idle tier should scale below the top rung, stayed at {}",
            report.final_cores
        );
        assert!(report.scale_events > 0);
        assert!(report.mean_active_cores < 8.0);
        assert_eq!(report.scale_log.len() as u64, report.scale_events.min(32));
    }

    #[test]
    fn traced_runs_match_untraced_and_emit_serving_events() {
        let mut cfg = quick_cfg(400, 2_000.0);
        cfg.autoscale = Some(AutoscalePolicy::for_cores(4));
        let plain = run_serve(&cfg).unwrap();
        let mut trace = EventTrace::new();
        let traced = run_serve_traced(&cfg, &mut trace).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert!(trace.count("job_admit") > 0);
        assert!(trace.count("job_complete") > 0);
        assert!(trace.count("job_shed") > 0, "overload must shed");
        assert!(trace.count("active_cores") > 0);
        assert!(trace.count("outstanding_jobs") > 0);
        assert_eq!(trace.count("job_complete") as u64, traced.completed);
        assert_eq!(trace.count("job_shed") as u64, traced.shed);
    }

    #[test]
    fn summary_table_has_one_row_per_tenant() {
        let report = run_serve(&quick_cfg(200, 40.0)).unwrap();
        let table = report.summary_table();
        assert_eq!(table.rows(), 2);
        assert_eq!(
            table.x_values,
            vec!["interactive".to_string(), "batch".to_string()]
        );
        assert_eq!(table.series.len(), 7);
    }

    #[test]
    #[should_panic(expected = "open-loop")]
    fn closed_loop_arrivals_are_rejected() {
        let mut cfg = quick_cfg(10, 40.0);
        cfg.arrivals = ArrivalSpec::closed(2, 100);
        let _ = run_serve(&cfg);
    }

    #[test]
    #[should_panic(expected = "top rung")]
    fn autoscale_ladders_must_top_out_at_the_machine() {
        let mut cfg = quick_cfg(10, 40.0);
        cfg.autoscale = Some(AutoscalePolicy::for_cores(8));
        let _ = run_serve(&cfg);
    }

    #[test]
    fn model_errors_surface() {
        let mut cfg = quick_cfg(10, 40.0);
        cfg.cores = 999;
        assert!(run_serve(&cfg).is_err());
    }
}
