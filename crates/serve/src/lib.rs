//! # pdfws-serve — a multi-tenant, SLO-aware serving tier
//!
//! The stream layer (`pdfws-stream`) answers "what happens when a *batch* of
//! jobs flows through one machine"; this crate scales that question up to a
//! *service*: heavy-tailed open-loop traffic from several tenants, each with
//! its own fair-share weight, workload mix, and p99 sojourn objective,
//! served for millions of jobs in constant memory.
//!
//! Four pieces compose the tier:
//!
//! * [`ArrivalSpec`] — the workspace's **fifth** string-addressable axis
//!   (after schedulers, workloads, memory systems, and cache modes): an
//!   extensible registry of arrival processes.  `poisson:rate=40` and
//!   `uniform:gap=25000` bridge to the stream backend's native processes;
//!   `pareto:alpha=1.5,rate=40` draws heavy-tailed inter-arrival gaps;
//!   `burst:period=400000,duty=0.25,hi=160,lo=10` and
//!   `diurnal:period=2000000,mean=40,amp=0.8` modulate a Poisson process by
//!   exact thinning.  All generators are deterministic in the seed.
//! * [`TenantSpec`] — who submits traffic: a `+`-joined list of
//!   `name:weight=..,slo=..,p99=..,mix=..` tenants ([`parse_tenants`]).
//! * [`AutoscalePolicy`] / [`Autoscaler`] — a hysteresis controller stepping
//!   the machine along a ladder of core levels as load moves.
//! * [`run_serve`] — the serving loop itself: engine-calibrated service
//!   times replayed under fluid processor sharing, with deficit-round-robin
//!   dispatch across tenants and an EWMA-corrected admission estimator that
//!   sheds jobs predicted to violate their tenant's SLO (see the
//!   [`server`] module docs for the model and its deliberate limits).
//!
//! Every per-job statistic folds into `pdfws-metrics` streaming estimators
//! (P² quantiles), so a 10⁷-job day costs the same memory as a 10²-job
//! smoke test.

pub mod arrival_spec;
pub mod autoscale;
pub mod server;
pub mod tenant;

pub use arrival_spec::{
    register as register_arrival, ArrivalFactory, ArrivalGen, ArrivalRegistry, ArrivalSpec,
};
pub use autoscale::{AutoscalePolicy, Autoscaler};
pub use server::{
    run_serve, run_serve_traced, validate_serve_cfg, ServeConfig, ServeReport, TenantReport,
};
pub use tenant::{parse_tenants, TenantSpec, DEFAULT_BATCH_P99_CYCLES, DEFAULT_LATENCY_P99_CYCLES};
