//! `ArrivalSpec` — the open, parameterized description of an arrival process,
//! the workspace's **fifth** string-addressable axis (after schedulers,
//! workloads, memory-system models, and cache modes), in the shared
//! `name:key=value` grammar:
//!
//! ```text
//! poisson:rate=80                      memoryless arrivals at 80 jobs/Mcycle
//! pareto:alpha=1.5,rate=80             heavy-tailed interarrival gaps
//! burst:period=400000,duty=0.25,hi=160,lo=10
//!                                      square-wave on/off load
//! diurnal:period=2000000,mean=40,amp=0.8
//!                                      sinusoidal day/night load
//! uniform:gap=25000                    deterministic arrivals, one per gap
//! closed:population=4,think=20000      fixed client population
//! ```
//!
//! Parsing validates the process name and every parameter against the
//! [`ArrivalRegistry`]; the stored form is canonical (sorted keys, normalised
//! numbers), so `to_string()` then `parse()` is the identity.  A validated
//! spec yields either a streaming [`ArrivalGen`] (constant-memory, one
//! arrival cycle at a time — what the serving loop consumes) or an
//! [`ArrivalProcess`] for the stream backend (native variants where one
//! exists, [`ArrivalProcess::Explicit`] otherwise).
//!
//! All rates are in jobs per million cycles, matching the stream crate's
//! Poisson convention; all generators are pure functions of (spec, seed).

use pdfws_spec::{SpecErrorKind, SpecFamily, SpecTable, Vocab};
use pdfws_stream::ArrivalProcess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

pub use pdfws_spec::{ParamKind, ParamSpec};

/// Errors from parsing or validating an [`ArrivalSpec`] (the shared
/// [`pdfws_spec::SpecError`], worded with the arrival vocabulary).
pub type SpecError = pdfws_spec::SpecError;

/// The arrival domain's error wording ("unknown arrival process …; known
/// processes: …").
static ARRIVAL_VOCAB: Vocab = Vocab {
    subject: "arrivals",
    entity: "arrival process",
    known_label: "known processes",
};

/// A parsed, validated arrival-process description: process name + parameter
/// overrides.
///
/// Construct one with the named constructors ([`ArrivalSpec::poisson`],
/// [`ArrivalSpec::pareto`], …), by parsing (`"pareto:alpha=1.5".parse()`), or
/// via [`ArrivalSpec::with_param`]; every path validates against the global
/// [`ArrivalRegistry`], so a value can always produce its generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrivalSpec {
    process: String,
    /// Canonically sorted `key -> value` overrides (only the
    /// explicitly-given ones; everything else uses the factory's default).
    params: BTreeMap<String, String>,
}

impl ArrivalSpec {
    /// Internal: build a spec that is already known valid.
    pub(crate) fn known_valid(process: &str, params: BTreeMap<String, String>) -> Self {
        ArrivalSpec {
            process: process.to_string(),
            params,
        }
    }

    /// Parse and validate a spec string (same as `s.parse()`).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        s.parse()
    }

    /// Memoryless Poisson arrivals at `rate` jobs per million cycles.
    pub fn poisson(rate: f64) -> Self {
        format!("poisson:rate={rate}")
            .parse()
            .expect("positive rates build valid poisson specs")
    }

    /// Heavy-tailed Pareto interarrival gaps with tail index `alpha`
    /// (`> 1`, lower is heavier) at mean `rate` jobs per million cycles.
    pub fn pareto(alpha: f64, rate: f64) -> Self {
        format!("pareto:alpha={alpha},rate={rate}")
            .parse()
            .expect("alpha > 1 and positive rates build valid pareto specs")
    }

    /// Square-wave on/off load with the factory defaults.
    pub fn burst() -> Self {
        Self::known_valid("burst", BTreeMap::new())
    }

    /// Sinusoidal day/night load with the factory defaults.
    pub fn diurnal() -> Self {
        Self::known_valid("diurnal", BTreeMap::new())
    }

    /// Deterministic arrivals, one every `gap` cycles.
    pub fn uniform(gap: u64) -> Self {
        format!("uniform:gap={gap}")
            .parse()
            .expect("positive gaps build valid uniform specs")
    }

    /// Closed loop: `population` clients with `think` cycles of think time.
    pub fn closed(population: u64, think: u64) -> Self {
        format!("closed:population={population},think={think}")
            .parse()
            .expect("non-empty populations build valid closed specs")
    }

    /// The registry key this spec resolves through (`"poisson"`, `"pareto"`).
    pub fn process_name(&self) -> &str {
        &self.process
    }

    /// The explicitly-given overrides, in canonical (sorted-by-key) order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The raw value of one parameter, if it was given.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// A `u64` override, if given (parses by construction).
    pub fn u64_param(&self, key: &str) -> Option<u64> {
        self.param(key)
            .map(|v| v.parse().expect("validated u64 parameter"))
    }

    /// An `f64` override, if given (parses by construction).
    pub fn f64_param(&self, key: &str) -> Option<f64> {
        self.param(key)
            .map(|v| v.parse().expect("validated f64 parameter"))
    }

    /// Add or replace one parameter, revalidating the result.  Consumes and
    /// returns the spec so calls chain.
    pub fn with_param(mut self, key: &str, value: &str) -> Result<Self, SpecError> {
        self.params.insert(key.to_string(), value.to_string());
        ArrivalRegistry::global().validate(self.process.clone(), self.params)
    }

    /// A streaming generator of absolute arrival cycles for this process,
    /// seeded by `seed`; `None` for closed-loop processes (their arrivals
    /// depend on completions, so no exogenous schedule exists).
    pub fn generator(&self, seed: u64) -> Option<Box<dyn ArrivalGen>> {
        ArrivalRegistry::global().generator(self, seed)
    }

    /// Whether the process is open loop (has a [`generator`](Self::generator)).
    pub fn is_open_loop(&self) -> bool {
        self.generator(0).is_some()
    }

    /// The stream-backend [`ArrivalProcess`] for an `n`-job run: the native
    /// variant where one exists (`poisson`, `uniform`, `closed`), otherwise
    /// an [`ArrivalProcess::Explicit`] schedule drawn from the generator.
    pub fn process(&self, n: usize, seed: u64) -> ArrivalProcess {
        ArrivalRegistry::global().process(self, n, seed)
    }

    /// The canonical string form (what [`fmt::Display`] prints).
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        pdfws_spec::format_spec(f, &self.process, &self.params)
    }
}

impl FromStr for ArrivalSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (process, params) = pdfws_spec::parse_spec(s, &ARRIVAL_VOCAB)?;
        ArrivalRegistry::global().validate(process, params)
    }
}

/// A streaming source of absolute arrival cycles: each call returns the next
/// arrival, non-decreasing, forever.  Constant memory — the serving loop pulls
/// one arrival at a time even for 10⁷-job runs.
pub trait ArrivalGen: Send {
    /// The next absolute arrival cycle.
    fn next_arrival(&mut self) -> u64;
}

/// Turns a validated [`ArrivalSpec`] into generators and stream-backend
/// processes.
///
/// The registry guarantees the build methods only ever see specs whose keys
/// and values passed the factory's [`ArrivalFactory::params`] declarations.
pub trait ArrivalFactory: Send + Sync {
    /// The registry key (`"poisson"`); also the spec's process name.
    fn name(&self) -> &'static str;
    /// One-line description, shown by [`ArrivalRegistry::help`].
    fn doc(&self) -> &'static str;
    /// The parameters this process accepts (empty slice: none).
    fn params(&self) -> &'static [ParamSpec];
    /// Check cross-parameter constraints after each key/value passed its
    /// [`ParamSpec`] (e.g. reject a Pareto tail index without a finite mean).
    /// Return an error message to reject the combination; the default accepts
    /// all.
    fn validate_spec(&self, _spec: &ArrivalSpec) -> Result<(), String> {
        Ok(())
    }
    /// The streaming generator; `None` for closed-loop processes.
    fn generator(&self, spec: &ArrivalSpec, seed: u64) -> Option<Box<dyn ArrivalGen>>;
    /// The stream-backend process for an `n`-job run.  The default draws `n`
    /// cycles from the generator into an [`ArrivalProcess::Explicit`]
    /// schedule labelled with the spec's canonical string; closed-loop
    /// factories must override.
    fn process(&self, spec: &ArrivalSpec, n: usize, seed: u64) -> ArrivalProcess {
        let mut gen = self
            .generator(spec, seed)
            .expect("closed-loop factories must override process()");
        let schedule: Vec<u64> = (0..n.max(1)).map(|_| gen.next_arrival()).collect();
        ArrivalProcess::explicit(schedule, spec.to_string())
    }
}

/// Adapter letting the shared [`SpecTable`] read an arrival factory's
/// declarations.
impl SpecFamily for dyn ArrivalFactory {
    fn family_name(&self) -> &'static str {
        self.name()
    }
    fn family_doc(&self) -> &'static str {
        self.doc()
    }
    fn family_params(&self) -> &'static [ParamSpec] {
        self.params()
    }
}

/// A name-keyed set of [`ArrivalFactory`] objects.  Almost all code uses the
/// process-wide [`ArrivalRegistry::global`] instance.
pub struct ArrivalRegistry {
    factories: SpecTable<dyn ArrivalFactory>,
}

impl ArrivalRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        ArrivalRegistry {
            factories: SpecTable::new(&ARRIVAL_VOCAB),
        }
    }

    /// A registry pre-loaded with the built-in processes.
    pub fn with_builtins() -> Self {
        let reg = Self::empty();
        reg.register(Arc::new(PoissonFactory));
        reg.register(Arc::new(UniformFactory));
        reg.register(Arc::new(ParetoFactory));
        reg.register(Arc::new(BurstFactory));
        reg.register(Arc::new(DiurnalFactory));
        reg.register(Arc::new(ClosedFactory));
        reg
    }

    /// The process-wide registry every spec parse resolves through.
    pub fn global() -> &'static ArrivalRegistry {
        static GLOBAL: OnceLock<ArrivalRegistry> = OnceLock::new();
        GLOBAL.get_or_init(ArrivalRegistry::with_builtins)
    }

    /// Add (or replace — last registration wins) a factory.
    pub fn register(&self, factory: Arc<dyn ArrivalFactory>) {
        self.factories.register(factory);
    }

    /// The registered process names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.names()
    }

    /// Look up one factory.
    pub fn factory(&self, name: &str) -> Option<Arc<dyn ArrivalFactory>> {
        self.factories.get(name)
    }

    /// Validate a raw `(process, params)` pair into a canonical
    /// [`ArrivalSpec`].
    pub fn validate(
        &self,
        process: String,
        params: BTreeMap<String, String>,
    ) -> Result<ArrivalSpec, SpecError> {
        let (factory, canonical) = self.factories.validate(process, params)?;
        let spec = ArrivalSpec::known_valid(factory.name(), canonical);
        if let Err(message) = factory.validate_spec(&spec) {
            return Err(SpecError::new(
                &ARRIVAL_VOCAB,
                SpecErrorKind::InvalidCombination {
                    owner: factory.name().to_string(),
                    message,
                },
            ));
        }
        Ok(spec)
    }

    /// The streaming generator a spec describes; `None` for closed loops.
    ///
    /// # Panics
    ///
    /// Panics if the spec's process has been removed from the registry since
    /// the spec was created.
    pub fn generator(&self, spec: &ArrivalSpec, seed: u64) -> Option<Box<dyn ArrivalGen>> {
        self.resolve(spec).generator(spec, seed)
    }

    /// The stream-backend [`ArrivalProcess`] a spec describes (see
    /// [`ArrivalSpec::process`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec's process has been removed from the registry since
    /// the spec was created.
    pub fn process(&self, spec: &ArrivalSpec, n: usize, seed: u64) -> ArrivalProcess {
        self.resolve(spec).process(spec, n, seed)
    }

    fn resolve(&self, spec: &ArrivalSpec) -> Arc<dyn ArrivalFactory> {
        self.factory(spec.process_name()).unwrap_or_else(|| {
            panic!(
                "arrival process '{}' vanished from the registry",
                spec.process_name()
            )
        })
    }

    /// A human-readable listing of every registered process and its
    /// parameters (what `--list` prints for the arrival axis).
    pub fn help(&self) -> String {
        self.factories.help()
    }
}

/// Register a factory with the global registry (sugar over
/// [`ArrivalRegistry::global`] + [`ArrivalRegistry::register`]).
pub fn register(factory: Arc<dyn ArrivalFactory>) {
    ArrivalRegistry::global().register(factory);
}

// ---------------------------------------------------------------------------
// Built-in factories and their generators.
// ---------------------------------------------------------------------------

/// Reject infinite values where a generator needs a finite mean.
fn require_finite(spec: &ArrivalSpec, key: &str) -> Result<(), String> {
    if spec.f64_param(key).is_some_and(|v| !v.is_finite()) {
        return Err(format!("'{key}' must be finite"));
    }
    Ok(())
}

struct PoissonGen {
    mean_gap: f64,
    t: f64,
    rng: StdRng,
}

impl ArrivalGen for PoissonGen {
    fn next_arrival(&mut self) -> u64 {
        // Inverse-CDF exponential sample, identical to the stream backend's
        // OpenLoopPoisson scheduler so `poisson` specs agree across tiers.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        self.t += -u.ln() * self.mean_gap;
        self.t as u64
    }
}

struct PoissonFactory;

/// Seed-mixing constant shared with the stream backend's Poisson sampler.
const POISSON_SEED_MIX: u64 = 0xA881_7A15;

impl ArrivalFactory for PoissonFactory {
    fn name(&self) -> &'static str {
        "poisson"
    }
    fn doc(&self) -> &'static str {
        "memoryless open-loop arrivals (exponential interarrival gaps)"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "rate",
            kind: ParamKind::PositiveF64,
            doc: "offered load in jobs per million cycles (default 40)",
        }]
    }
    fn validate_spec(&self, spec: &ArrivalSpec) -> Result<(), String> {
        require_finite(spec, "rate")
    }
    fn generator(&self, spec: &ArrivalSpec, seed: u64) -> Option<Box<dyn ArrivalGen>> {
        let rate = spec.f64_param("rate").unwrap_or(40.0);
        Some(Box::new(PoissonGen {
            mean_gap: 1.0e6 / rate,
            t: 0.0,
            rng: StdRng::seed_from_u64(seed ^ POISSON_SEED_MIX),
        }))
    }
    fn process(&self, spec: &ArrivalSpec, _n: usize, seed: u64) -> ArrivalProcess {
        ArrivalProcess::OpenLoopPoisson {
            jobs_per_mcycle: spec.f64_param("rate").unwrap_or(40.0),
            seed,
        }
    }
}

struct UniformGen {
    gap: u64,
    next: u64,
}

impl ArrivalGen for UniformGen {
    fn next_arrival(&mut self) -> u64 {
        let t = self.next;
        self.next += self.gap;
        t
    }
}

struct UniformFactory;

impl ArrivalFactory for UniformFactory {
    fn name(&self) -> &'static str {
        "uniform"
    }
    fn doc(&self) -> &'static str {
        "deterministic open-loop arrivals, one every gap cycles"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "gap",
            kind: ParamKind::U64,
            doc: "cycles between consecutive arrivals (default 25000)",
        }]
    }
    fn validate_spec(&self, spec: &ArrivalSpec) -> Result<(), String> {
        if spec.u64_param("gap") == Some(0) {
            return Err("'gap' must be at least 1 cycle".into());
        }
        Ok(())
    }
    fn generator(&self, spec: &ArrivalSpec, _seed: u64) -> Option<Box<dyn ArrivalGen>> {
        Some(Box::new(UniformGen {
            gap: spec.u64_param("gap").unwrap_or(25_000),
            next: 0,
        }))
    }
    fn process(&self, spec: &ArrivalSpec, _n: usize, _seed: u64) -> ArrivalProcess {
        ArrivalProcess::OpenLoopUniform {
            interarrival_cycles: spec.u64_param("gap").unwrap_or(25_000),
        }
    }
}

struct ParetoGen {
    /// Pareto scale `x_m`, chosen so the mean gap hits the requested rate.
    xm: f64,
    inv_alpha: f64,
    t: f64,
    rng: StdRng,
}

impl ArrivalGen for ParetoGen {
    fn next_arrival(&mut self) -> u64 {
        // Inverse-CDF Pareto sample: X = x_m * U^(-1/alpha), U ∈ (0, 1].
        let u: f64 = (1.0 - self.rng.gen::<f64>()).max(1e-12);
        self.t += self.xm * u.powf(-self.inv_alpha);
        self.t as u64
    }
}

struct ParetoFactory;

impl ArrivalFactory for ParetoFactory {
    fn name(&self) -> &'static str {
        "pareto"
    }
    fn doc(&self) -> &'static str {
        "heavy-tailed open-loop arrivals (Pareto interarrival gaps)"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "alpha",
                kind: ParamKind::PositiveF64,
                doc: "Pareto tail index; must exceed 1 for a finite mean, lower \
                      is heavier (default 1.5)",
            },
            ParamSpec {
                key: "rate",
                kind: ParamKind::PositiveF64,
                doc: "mean offered load in jobs per million cycles (default 40)",
            },
        ]
    }
    fn validate_spec(&self, spec: &ArrivalSpec) -> Result<(), String> {
        require_finite(spec, "rate")?;
        require_finite(spec, "alpha")?;
        if spec.f64_param("alpha").is_some_and(|a| a <= 1.0) {
            return Err("'alpha' must exceed 1 (a Pareto tail at or below 1 has no \
                        finite mean rate)"
                .into());
        }
        Ok(())
    }
    fn generator(&self, spec: &ArrivalSpec, seed: u64) -> Option<Box<dyn ArrivalGen>> {
        let alpha = spec.f64_param("alpha").unwrap_or(1.5);
        let rate = spec.f64_param("rate").unwrap_or(40.0);
        let mean_gap = 1.0e6 / rate;
        // Pareto mean is x_m * alpha / (alpha - 1); invert for x_m.
        let xm = mean_gap * (alpha - 1.0) / alpha;
        Some(Box::new(ParetoGen {
            xm,
            inv_alpha: 1.0 / alpha,
            t: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0x9A7E_70AA),
        }))
    }
}

/// Thinning (Lewis–Shedler) sampler for rate-modulated Poisson processes:
/// candidate gaps are drawn at the peak rate and accepted with probability
/// `rate(t) / peak`, which realises the exact inhomogeneous process.
struct ModulatedGen<F: Fn(f64) -> f64 + Send> {
    peak_rate_per_cycle: f64,
    rate_per_cycle_at: F,
    t: f64,
    rng: StdRng,
}

impl<F: Fn(f64) -> f64 + Send> ArrivalGen for ModulatedGen<F> {
    fn next_arrival(&mut self) -> u64 {
        loop {
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            self.t += -u.ln() / self.peak_rate_per_cycle;
            let accept: f64 = self.rng.gen();
            if accept * self.peak_rate_per_cycle <= (self.rate_per_cycle_at)(self.t) {
                return self.t as u64;
            }
        }
    }
}

struct BurstFactory;

impl ArrivalFactory for BurstFactory {
    fn name(&self) -> &'static str {
        "burst"
    }
    fn doc(&self) -> &'static str {
        "square-wave on/off load: Poisson at rate hi for the duty fraction of \
         each period, lo for the rest"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "period",
                kind: ParamKind::U64,
                doc: "burst cycle length in cycles (default 400000)",
            },
            ParamSpec {
                key: "duty",
                kind: ParamKind::Fraction,
                doc: "fraction of each period spent at the hi rate, strictly \
                      between 0 and 1 (default 0.25)",
            },
            ParamSpec {
                key: "hi",
                kind: ParamKind::PositiveF64,
                doc: "burst rate in jobs per million cycles (default 160)",
            },
            ParamSpec {
                key: "lo",
                kind: ParamKind::PositiveF64,
                doc: "off-burst rate in jobs per million cycles (default 10)",
            },
        ]
    }
    fn validate_spec(&self, spec: &ArrivalSpec) -> Result<(), String> {
        require_finite(spec, "hi")?;
        require_finite(spec, "lo")?;
        if spec.u64_param("period") == Some(0) {
            return Err("'period' must be at least 1 cycle".into());
        }
        if spec.f64_param("duty").is_some_and(|d| d == 0.0 || d == 1.0) {
            return Err("'duty' must lie strictly between 0 and 1 (otherwise one \
                        of the two rates never applies)"
                .into());
        }
        let hi = spec.f64_param("hi").unwrap_or(160.0);
        let lo = spec.f64_param("lo").unwrap_or(10.0);
        if lo > hi {
            return Err(format!("'lo' ({lo}) must not exceed 'hi' ({hi})"));
        }
        Ok(())
    }
    fn generator(&self, spec: &ArrivalSpec, seed: u64) -> Option<Box<dyn ArrivalGen>> {
        let period = spec.u64_param("period").unwrap_or(400_000) as f64;
        let duty = spec.f64_param("duty").unwrap_or(0.25);
        let hi = spec.f64_param("hi").unwrap_or(160.0) / 1.0e6;
        let lo = spec.f64_param("lo").unwrap_or(10.0) / 1.0e6;
        Some(Box::new(ModulatedGen {
            peak_rate_per_cycle: hi,
            rate_per_cycle_at: move |t: f64| {
                if (t % period) < duty * period {
                    hi
                } else {
                    lo
                }
            },
            t: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0xB52A_57F1),
        }))
    }
}

struct DiurnalFactory;

impl ArrivalFactory for DiurnalFactory {
    fn name(&self) -> &'static str {
        "diurnal"
    }
    fn doc(&self) -> &'static str {
        "sinusoidal day/night load: Poisson at mean*(1 + amp*sin(2*pi*t/period))"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "period",
                kind: ParamKind::U64,
                doc: "cycle length of one full day/night swing (default 2000000)",
            },
            ParamSpec {
                key: "mean",
                kind: ParamKind::PositiveF64,
                doc: "mean rate in jobs per million cycles (default 40)",
            },
            ParamSpec {
                key: "amp",
                kind: ParamKind::Fraction,
                doc: "swing amplitude as a fraction of the mean, 0..1 (default 0.8)",
            },
        ]
    }
    fn validate_spec(&self, spec: &ArrivalSpec) -> Result<(), String> {
        require_finite(spec, "mean")?;
        if spec.u64_param("period") == Some(0) {
            return Err("'period' must be at least 1 cycle".into());
        }
        Ok(())
    }
    fn generator(&self, spec: &ArrivalSpec, seed: u64) -> Option<Box<dyn ArrivalGen>> {
        let period = spec.u64_param("period").unwrap_or(2_000_000) as f64;
        let mean = spec.f64_param("mean").unwrap_or(40.0) / 1.0e6;
        let amp = spec.f64_param("amp").unwrap_or(0.8);
        Some(Box::new(ModulatedGen {
            peak_rate_per_cycle: mean * (1.0 + amp),
            rate_per_cycle_at: move |t: f64| {
                mean * (1.0 + amp * (std::f64::consts::TAU * t / period).sin())
            },
            t: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0xD1_0BA1),
        }))
    }
}

struct ClosedFactory;

impl ArrivalFactory for ClosedFactory {
    fn name(&self) -> &'static str {
        "closed"
    }
    fn doc(&self) -> &'static str {
        "closed loop: a fixed client population, each resubmitting after a \
         think time (no exogenous schedule)"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "population",
                kind: ParamKind::U64,
                doc: "number of concurrent clients (default 4)",
            },
            ParamSpec {
                key: "think",
                kind: ParamKind::U64,
                doc: "cycles between a completion and the client's next \
                      submission (default 20000)",
            },
        ]
    }
    fn validate_spec(&self, spec: &ArrivalSpec) -> Result<(), String> {
        if spec.u64_param("population") == Some(0) {
            return Err("'population' must be at least 1 client".into());
        }
        Ok(())
    }
    fn generator(&self, _spec: &ArrivalSpec, _seed: u64) -> Option<Box<dyn ArrivalGen>> {
        None
    }
    fn process(&self, spec: &ArrivalSpec, _n: usize, _seed: u64) -> ArrivalProcess {
        ArrivalProcess::ClosedLoop {
            population: spec.u64_param("population").unwrap_or(4) as usize,
            think_cycles: spec.u64_param("think").unwrap_or(20_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(spec: &str, n: usize, seed: u64) -> Vec<u64> {
        let spec: ArrivalSpec = spec.parse().unwrap();
        let mut gen = spec.generator(seed).unwrap();
        (0..n).map(|_| gen.next_arrival()).collect()
    }

    #[test]
    fn all_builtin_processes_parse_and_display_canonically() {
        for name in ["poisson", "uniform", "pareto", "burst", "diurnal", "closed"] {
            let spec: ArrivalSpec = name.parse().unwrap();
            assert_eq!(spec.process_name(), name);
            assert_eq!(spec.to_string(), name);
        }
        let spec: ArrivalSpec = "pareto:rate=080,alpha=1.50".parse().unwrap();
        assert_eq!(spec.to_string(), "pareto:alpha=1.5,rate=80");
        let again: ArrivalSpec = spec.to_string().parse().unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn unknown_processes_and_params_are_rejected_with_vocabulary() {
        let err = "avalanche".parse::<ArrivalSpec>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown arrival process 'avalanche'"), "{msg}");
        assert!(msg.contains("known processes"), "{msg}");
        assert!(msg.contains("pareto"), "{msg}");
        let err = "poisson:burstiness=4".parse::<ArrivalSpec>().unwrap_err();
        assert!(
            err.to_string().contains("has no parameter 'burstiness'"),
            "{err}"
        );
    }

    #[test]
    fn degenerate_values_are_rejected() {
        for bad in [
            "pareto:alpha=1",
            "pareto:alpha=0.8",
            "pareto:rate=inf",
            "poisson:rate=inf",
            "poisson:rate=0",
            "uniform:gap=0",
            "burst:duty=0",
            "burst:duty=1",
            "burst:period=0",
            "burst:hi=10,lo=40",
            "diurnal:period=0",
            "closed:population=0",
        ] {
            assert!(
                bad.parse::<ArrivalSpec>().is_err(),
                "{bad} should not parse"
            );
        }
        assert!("diurnal:amp=1".parse::<ArrivalSpec>().is_ok());
    }

    #[test]
    fn generators_are_deterministic_and_non_decreasing() {
        for spec in [
            "poisson:rate=100",
            "uniform:gap=5000",
            "pareto:alpha=1.5,rate=100",
            "burst:period=100000,duty=0.3,hi=200,lo=20",
            "diurnal:period=500000,mean=100,amp=0.9",
        ] {
            let a = schedule(spec, 300, 11);
            let b = schedule(spec, 300, 11);
            assert_eq!(a, b, "{spec}");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{spec}: {a:?}");
            let c = schedule(spec, 300, 12);
            if spec.starts_with("uniform") {
                assert_eq!(a, c, "uniform ignores the seed");
            } else {
                assert_ne!(a, c, "{spec} should react to the seed");
            }
        }
    }

    #[test]
    fn mean_rates_are_calibrated() {
        // Every open-loop process targeting ~100 jobs/Mcycle should produce a
        // long-run mean gap near 10_000 cycles.
        for spec in [
            "poisson:rate=100",
            "pareto:alpha=2.5,rate=100",
            "diurnal:period=200000,mean=100,amp=0.8",
        ] {
            let times = schedule(spec, 20_000, 5);
            let mean_gap = *times.last().unwrap() as f64 / times.len() as f64;
            assert!(
                (mean_gap - 10_000.0).abs() < 1_200.0,
                "{spec}: mean gap {mean_gap}"
            );
        }
    }

    #[test]
    fn pareto_gaps_are_heavier_tailed_than_poisson() {
        let max_gap = |times: &[u64]| times.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        let pareto = schedule("pareto:alpha=1.2,rate=100", 5_000, 3);
        let poisson = schedule("poisson:rate=100", 5_000, 3);
        assert!(
            max_gap(&pareto) > 4 * max_gap(&poisson),
            "pareto max gap {} vs poisson {}",
            max_gap(&pareto),
            max_gap(&poisson)
        );
    }

    #[test]
    fn burst_loads_clump_arrivals() {
        // With duty 0.2 and hi >> lo, most arrivals land inside the burst
        // window (the first 20% of each period).
        let times = schedule("burst:period=1000000,duty=0.2,hi=400,lo=4", 2_000, 9);
        let in_burst = times.iter().filter(|&&t| (t % 1_000_000) < 200_000).count();
        assert!(
            in_burst as f64 > 0.8 * times.len() as f64,
            "{in_burst} of {} arrivals in burst windows",
            times.len()
        );
    }

    #[test]
    fn processes_bridge_to_the_stream_backend() {
        // Native variants where the stream crate has one...
        let p = ArrivalSpec::poisson(80.0).process(16, 7);
        assert_eq!(
            p,
            ArrivalProcess::OpenLoopPoisson {
                jobs_per_mcycle: 80.0,
                seed: 7
            }
        );
        assert_eq!(
            ArrivalSpec::uniform(500).process(16, 7),
            ArrivalProcess::OpenLoopUniform {
                interarrival_cycles: 500
            }
        );
        assert_eq!(
            ArrivalSpec::closed(3, 90).process(16, 7),
            ArrivalProcess::ClosedLoop {
                population: 3,
                think_cycles: 90
            }
        );
        // ...explicit schedules otherwise, labelled with the canonical spec.
        let spec = ArrivalSpec::pareto(1.5, 80.0);
        let p = spec.process(64, 7);
        assert_eq!(p.label(), "pareto:alpha=1.5,rate=80");
        let sched = p.open_loop_schedule(64).unwrap();
        assert_eq!(sched.len(), 64);
        assert!(sched.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn open_loop_flag_matches_the_generator() {
        assert!(ArrivalSpec::poisson(40.0).is_open_loop());
        assert!(ArrivalSpec::burst().is_open_loop());
        assert!(!ArrivalSpec::closed(2, 100).is_open_loop());
    }

    #[test]
    fn help_lists_processes_and_parameters() {
        let help = ArrivalRegistry::global().help();
        for needle in [
            "poisson",
            "pareto",
            "alpha=<f64>0>",
            "duty=<0..1>",
            "closed",
        ] {
            assert!(help.contains(needle), "missing {needle} in:\n{help}");
        }
    }

    #[test]
    fn custom_factories_extend_the_grammar() {
        struct Tide;
        impl ArrivalFactory for Tide {
            fn name(&self) -> &'static str {
                "test-tide"
            }
            fn doc(&self) -> &'static str {
                "one arrival per 1000 cycles (registered by a unit test)"
            }
            fn params(&self) -> &'static [ParamSpec] {
                &[]
            }
            fn generator(&self, _spec: &ArrivalSpec, _seed: u64) -> Option<Box<dyn ArrivalGen>> {
                Some(Box::new(UniformGen {
                    gap: 1_000,
                    next: 0,
                }))
            }
        }
        register(Arc::new(Tide));
        let spec: ArrivalSpec = "test-tide".parse().unwrap();
        let mut gen = spec.generator(0).unwrap();
        assert_eq!(gen.next_arrival(), 0);
        assert_eq!(gen.next_arrival(), 1_000);
        let err = "test-tide:x=1".parse::<ArrivalSpec>().unwrap_err();
        assert!(err.to_string().contains("takes no parameters"), "{err}");
    }

    #[test]
    fn with_param_revalidates() {
        let spec = ArrivalSpec::burst().with_param("duty", "0.5").unwrap();
        assert_eq!(spec.to_string(), "burst:duty=0.5");
        assert!(ArrivalSpec::burst().with_param("duty", "0").is_err());
    }
}
