//! Core autoscaling: hysteresis over a ladder of core levels.
//!
//! The serving tier reuses the engine's core model — a "level" is simply a
//! core count the machine is re-calibrated for — and steps along the ladder
//! on load: scale **up** when the jobs-in-system per core exceed the high
//! water mark, **down** when they fall below the low water mark.  Hysteresis
//! comes from the gap between the two marks plus a cooldown after every
//! change, so a load hovering at one threshold cannot make the tier thrash.

/// The autoscaling policy: the core-count ladder and its thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePolicy {
    /// Ascending core counts the tier may run at; the machine is calibrated
    /// once per level.
    pub levels: Vec<usize>,
    /// Scale up when jobs in system per core exceed this.
    pub up_jobs_per_core: f64,
    /// Scale down when jobs in system per core fall below this (must be below
    /// `up_jobs_per_core` for hysteresis to exist).
    pub down_jobs_per_core: f64,
    /// Cycles between load evaluations.
    pub interval_cycles: u64,
    /// Minimum cycles between two scaling decisions.
    pub cooldown_cycles: u64,
}

impl AutoscalePolicy {
    /// The default ladder for a machine with `max_cores`: quarter, half, and
    /// full capacity (deduplicated for small machines), evaluated every 50k
    /// cycles with a 200k-cycle cooldown.
    pub fn for_cores(max_cores: usize) -> Self {
        let mut levels: Vec<usize> = [max_cores.div_ceil(4), max_cores.div_ceil(2), max_cores]
            .into_iter()
            .collect();
        levels.dedup();
        AutoscalePolicy {
            levels,
            up_jobs_per_core: 1.5,
            down_jobs_per_core: 0.5,
            interval_cycles: 50_000,
            cooldown_cycles: 200_000,
        }
    }

    /// Assert the invariants the scaler relies on.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-ascending ladder, a zero level, inverted
    /// thresholds, or a zero evaluation interval.
    pub fn validate(&self) {
        assert!(
            !self.levels.is_empty(),
            "autoscale ladder must be non-empty"
        );
        assert!(
            self.levels.iter().all(|&c| c > 0),
            "autoscale levels must be positive core counts"
        );
        assert!(
            self.levels.windows(2).all(|w| w[0] < w[1]),
            "autoscale ladder must be strictly ascending: {:?}",
            self.levels
        );
        assert!(
            self.down_jobs_per_core < self.up_jobs_per_core,
            "hysteresis requires down ({}) < up ({})",
            self.down_jobs_per_core,
            self.up_jobs_per_core
        );
        assert!(
            self.interval_cycles > 0,
            "evaluation interval must be positive"
        );
    }
}

/// Runtime state of the scaler: current rung, last change, next evaluation.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    level_idx: usize,
    last_change: Option<u64>,
    next_eval: u64,
}

impl Autoscaler {
    /// Start at the top rung (the serving tier scales *down* from full
    /// capacity when load allows, so cold starts never violate SLOs).
    pub fn new(policy: AutoscalePolicy) -> Self {
        policy.validate();
        let level_idx = policy.levels.len() - 1;
        Autoscaler {
            policy,
            level_idx,
            last_change: None,
            next_eval: 0,
        }
    }

    /// Cores currently online.
    pub fn cores(&self) -> usize {
        self.policy.levels[self.level_idx]
    }

    /// The cycle of the next scheduled evaluation.
    pub fn next_eval(&self) -> u64 {
        self.next_eval
    }

    /// Evaluate the load at `now`; returns the new core count if this tick
    /// changed the level.  `jobs_in_system` counts active plus queued jobs.
    pub fn observe(&mut self, now: u64, jobs_in_system: usize) -> Option<usize> {
        if now < self.next_eval {
            return None;
        }
        self.next_eval = now + self.policy.interval_cycles;
        if let Some(last) = self.last_change {
            if now < last + self.policy.cooldown_cycles {
                return None;
            }
        }
        let per_core = jobs_in_system as f64 / self.cores() as f64;
        let new_idx = if per_core > self.policy.up_jobs_per_core
            && self.level_idx + 1 < self.policy.levels.len()
        {
            self.level_idx + 1
        } else if per_core < self.policy.down_jobs_per_core && self.level_idx > 0 {
            self.level_idx - 1
        } else {
            return None;
        };
        self.level_idx = new_idx;
        self.last_change = Some(now);
        Some(self.cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            levels: vec![2, 4, 8],
            up_jobs_per_core: 1.5,
            down_jobs_per_core: 0.5,
            interval_cycles: 100,
            cooldown_cycles: 1_000,
        }
    }

    #[test]
    fn default_ladder_ends_at_full_capacity() {
        let p = AutoscalePolicy::for_cores(8);
        assert_eq!(p.levels, vec![2, 4, 8]);
        p.validate();
        let p = AutoscalePolicy::for_cores(1);
        assert_eq!(p.levels, vec![1]);
        p.validate();
    }

    #[test]
    fn starts_at_the_top_rung() {
        assert_eq!(Autoscaler::new(policy()).cores(), 8);
    }

    #[test]
    fn scales_down_under_light_load_and_up_under_heavy() {
        let mut s = Autoscaler::new(policy());
        // Light load: 1 job on 8 cores → step down one rung per cooldown.
        assert_eq!(s.observe(0, 1), Some(4));
        assert_eq!(s.observe(100, 1), None, "cooldown holds");
        assert_eq!(s.observe(1_000, 1), Some(2));
        assert_eq!(s.observe(2_000, 1), None, "already at the bottom rung");
        // Heavy load: 40 jobs on 2 cores → climb back up.
        assert_eq!(s.observe(3_000, 40), Some(4));
        assert_eq!(s.observe(4_000, 40), Some(8));
        assert_eq!(s.observe(5_000, 40), None, "already at the top rung");
    }

    #[test]
    fn hysteresis_band_makes_no_change() {
        let mut s = Autoscaler::new(policy());
        // 8 cores x ~1.0 jobs/core sits between the marks: stable forever.
        for tick in 0..20 {
            assert_eq!(s.observe(tick * 100, 8), None);
        }
        assert_eq!(s.cores(), 8);
    }

    #[test]
    fn evaluations_respect_the_interval() {
        let mut s = Autoscaler::new(policy());
        assert_eq!(s.observe(0, 1), Some(4));
        // Off-schedule samples are ignored entirely.
        assert_eq!(s.observe(50, 1_000), None);
        assert_eq!(s.next_eval(), 100);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_ladders_are_rejected() {
        let mut p = policy();
        p.levels = vec![4, 2];
        Autoscaler::new(p);
    }
}
