//! `CacheModeSpec` — the open, parameterized description of *how* the cache
//! hierarchy is evaluated, in the workspace's shared `name:key=value` grammar:
//!
//! ```text
//! exact                 per-access simulation of every set (the default)
//! sampled:rate=16       systematic set-sampling: simulate 1/16th of the sets,
//!                       scale the statistics back up
//! analytic              reuse-distance histograms profiled once per DAG,
//!                       composed per cache size without replaying the stream
//! ```
//!
//! The three modes trade fidelity for speed.  `exact` is bit-exact and is what
//! every claim evaluation defaults to; `sampled` keeps the full engine
//! interleaving but touches only the sampled sets; `analytic` prices each
//! task's references from its profiled stack-distance histogram, so a sweep
//! over schedulers × cores × cache sizes never re-simulates the address
//! stream.  The declared accuracy contracts ([`MPKI_TOLERANCE_SAMPLED`],
//! [`MPKI_TOLERANCE_ANALYTIC`]) are enforced against `exact` by property
//! tests over every registered workload × scheduler.
//!
//! Parsing validates the mode name and parameters against the global
//! [`CacheModeRegistry`]; the stored form is canonical, so `to_string()` then
//! `parse()` is the identity — the same contract as the scheduler, workload
//! and memsys grammars.

use pdfws_spec::{ParamKind, ParamSpec, SpecErrorKind, SpecFamily, SpecTable, Vocab};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

/// Errors from parsing or validating a [`CacheModeSpec`] (the shared
/// [`pdfws_spec::SpecError`], worded with the cache vocabulary).
pub type CacheModeError = pdfws_spec::SpecError;

/// The cache domain's error wording ("unknown cache mode …; known modes: …").
static CACHE_VOCAB: Vocab = Vocab {
    subject: "cache",
    entity: "cache mode",
    known_label: "known modes",
};

/// Declared accuracy contract of `sampled` (any legal rate) against `exact`:
/// L2 MPKI must agree within this relative fraction plus [`MPKI_SLACK_ABS`]
/// absolute misses-per-kilo-instruction.
pub const MPKI_TOLERANCE_SAMPLED: f64 = 0.25;

/// Declared accuracy contract of `analytic` against `exact` (same form as
/// [`MPKI_TOLERANCE_SAMPLED`]; looser because the composed histograms model
/// capacity, not scheduler-induced sharing).
pub const MPKI_TOLERANCE_ANALYTIC: f64 = 0.60;

/// Absolute MPKI slack added to both relative tolerances, so near-zero miss
/// rates (everything fits in the L2) cannot fail on rounding noise.
pub const MPKI_SLACK_ABS: f64 = 2.0;

/// Describes an accepted cache mode: name, doc line, parameters.
///
/// The registry guarantees validated specs only carry declared, well-typed
/// parameters, so consumers (`pdfws-schedulers`' engine) can `expect`-parse.
pub trait CacheModeFactory: Send + Sync {
    /// The registry key (`"exact"`); also the spec's name component.
    fn name(&self) -> &'static str;
    /// One-line description, shown by [`CacheModeRegistry::help`].
    fn doc(&self) -> &'static str;
    /// The parameters this mode accepts (empty slice: none).
    fn params(&self) -> &'static [ParamSpec];
    /// Check cross-parameter constraints after each key/value passed its
    /// [`ParamSpec`].  Return an error message to reject the combination.
    fn validate_spec(&self, _spec: &CacheModeSpec) -> Result<(), String> {
        Ok(())
    }
}

/// Adapter letting the shared [`SpecTable`] read a mode factory's
/// declarations.
impl SpecFamily for dyn CacheModeFactory {
    fn family_name(&self) -> &'static str {
        self.name()
    }
    fn family_doc(&self) -> &'static str {
        self.doc()
    }
    fn family_params(&self) -> &'static [ParamSpec] {
        self.params()
    }
}

/// A name-keyed set of [`CacheModeFactory`] objects.  Almost all code uses
/// the process-wide [`CacheModeRegistry::global`] instance.
pub struct CacheModeRegistry {
    factories: SpecTable<dyn CacheModeFactory>,
}

impl CacheModeRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        CacheModeRegistry {
            factories: SpecTable::new(&CACHE_VOCAB),
        }
    }

    /// A registry pre-loaded with the built-in modes.
    pub fn with_builtins() -> Self {
        let reg = Self::empty();
        reg.register(Arc::new(ExactFactory));
        reg.register(Arc::new(SampledFactory));
        reg.register(Arc::new(AnalyticFactory));
        reg
    }

    /// The process-wide registry every cache-mode spec parse resolves through.
    pub fn global() -> &'static CacheModeRegistry {
        static GLOBAL: OnceLock<CacheModeRegistry> = OnceLock::new();
        GLOBAL.get_or_init(CacheModeRegistry::with_builtins)
    }

    /// Add (or replace — last registration wins) a factory.
    pub fn register(&self, factory: Arc<dyn CacheModeFactory>) {
        self.factories.register(factory);
    }

    /// The registered mode names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.names()
    }

    /// Look up one factory.
    pub fn factory(&self, name: &str) -> Option<Arc<dyn CacheModeFactory>> {
        self.factories.get(name)
    }

    /// Validate a raw `(mode, params)` pair into a canonical
    /// [`CacheModeSpec`].
    pub fn validate(
        &self,
        mode: String,
        params: BTreeMap<String, String>,
    ) -> Result<CacheModeSpec, CacheModeError> {
        let (factory, canonical) = self.factories.validate(mode, params)?;
        let spec = CacheModeSpec::known_valid(factory.name(), canonical);
        if let Err(message) = factory.validate_spec(&spec) {
            return Err(CacheModeError::new(
                &CACHE_VOCAB,
                SpecErrorKind::InvalidCombination {
                    owner: factory.name().to_string(),
                    message,
                },
            ));
        }
        Ok(spec)
    }

    /// A human-readable listing of every registered mode and its parameters
    /// (what `--list` prints for the cache axis).
    pub fn help(&self) -> String {
        self.factories.help()
    }
}

/// A parsed, validated cache-evaluation mode: mode name + parameters.
///
/// Construct one with the named constructors ([`CacheModeSpec::exact`],
/// [`CacheModeSpec::sampled`], [`CacheModeSpec::analytic`]) or by parsing
/// (`"sampled:rate=16".parse()`); every path validates against the global
/// [`CacheModeRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheModeSpec {
    mode: String,
    /// Canonically sorted `key -> value` parameters.
    params: BTreeMap<String, String>,
}

impl Default for CacheModeSpec {
    /// `exact` — the bit-exact per-access path every claim defaults to.
    fn default() -> Self {
        Self::exact()
    }
}

impl CacheModeSpec {
    /// Internal: build a spec that is already known valid.
    fn known_valid(mode: &str, params: BTreeMap<String, String>) -> Self {
        CacheModeSpec {
            mode: mode.to_string(),
            params,
        }
    }

    /// Parse and validate a spec string (same as `s.parse()`).
    pub fn parse(s: &str) -> Result<Self, CacheModeError> {
        s.parse()
    }

    /// Per-access exact simulation of every set (the default).
    pub fn exact() -> Self {
        Self::known_valid("exact", BTreeMap::new())
    }

    /// Systematic set-sampling at the given rate (a power of two ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a power of two ≥ 2 (use `parse` for fallible
    /// construction).
    pub fn sampled(rate: u64) -> Self {
        format!("sampled:rate={rate}")
            .parse()
            .expect("rate must be a power of two >= 2")
    }

    /// Reuse-distance histograms profiled once per DAG, composed per cache
    /// size.
    pub fn analytic() -> Self {
        Self::known_valid("analytic", BTreeMap::new())
    }

    /// The registry key this spec resolves through (`"exact"`, `"sampled"`,
    /// `"analytic"`).
    pub fn mode(&self) -> &str {
        &self.mode
    }

    /// Whether this is the bit-exact default mode.
    pub fn is_exact(&self) -> bool {
        self.mode == "exact"
    }

    /// The sampling rate, if this is a `sampled` spec (defaults to 16 when
    /// the parameter was omitted).
    pub fn sample_rate(&self) -> Option<u64> {
        if self.mode != "sampled" {
            return None;
        }
        Some(
            self.params
                .get("rate")
                .map(|v| v.parse().expect("validated u64 parameter"))
                .unwrap_or(16),
        )
    }

    /// The canonical string form (what [`fmt::Display`] prints).
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for CacheModeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        pdfws_spec::format_spec(f, &self.mode, &self.params)
    }
}

impl FromStr for CacheModeSpec {
    type Err = CacheModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (mode, params) = pdfws_spec::parse_spec(s, &CACHE_VOCAB)?;
        CacheModeRegistry::global().validate(mode, params)
    }
}

// ---------------------------------------------------------------------------
// Built-in factories.
// ---------------------------------------------------------------------------

struct ExactFactory;

impl CacheModeFactory for ExactFactory {
    fn name(&self) -> &'static str {
        "exact"
    }
    fn doc(&self) -> &'static str {
        "per-access simulation of every set (bit-exact; the default)"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }
}

struct SampledFactory;

impl CacheModeFactory for SampledFactory {
    fn name(&self) -> &'static str {
        "sampled"
    }
    fn doc(&self) -> &'static str {
        "systematic set-sampling: simulate 1/rate of the sets, scale the stats back up"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "rate",
            kind: ParamKind::U64,
            doc: "sample 1 in <rate> sets; a power of two >= 2 (default 16)",
        }]
    }
    fn validate_spec(&self, spec: &CacheModeSpec) -> Result<(), String> {
        let rate = spec.sample_rate().expect("sampled spec");
        if rate < 2 || !rate.is_power_of_two() {
            return Err(format!("'rate' must be a power of two >= 2, got {rate}"));
        }
        Ok(())
    }
}

struct AnalyticFactory;

impl CacheModeFactory for AnalyticFactory {
    fn name(&self) -> &'static str {
        "analytic"
    }
    fn doc(&self) -> &'static str {
        "stack-distance histograms profiled once per DAG, composed per cache size"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_mode_names_parse_and_display() {
        for name in ["exact", "sampled", "analytic"] {
            let spec: CacheModeSpec = name.parse().unwrap();
            assert_eq!(spec.mode(), name);
            assert_eq!(spec.to_string(), name);
        }
    }

    #[test]
    fn default_is_exact() {
        assert_eq!(CacheModeSpec::default(), CacheModeSpec::exact());
        assert!(CacheModeSpec::exact().is_exact());
        assert!(!CacheModeSpec::analytic().is_exact());
    }

    #[test]
    fn sampled_rates_canonicalise_and_round_trip() {
        let spec: CacheModeSpec = "sampled:rate=032".parse().unwrap();
        assert_eq!(spec.to_string(), "sampled:rate=32");
        assert_eq!(spec.sample_rate(), Some(32));
        let again: CacheModeSpec = spec.to_string().parse().unwrap();
        assert_eq!(again, spec);
        // A bare `sampled` means the default rate.
        let bare: CacheModeSpec = "sampled".parse().unwrap();
        assert_eq!(bare.sample_rate(), Some(16));
        assert_eq!(CacheModeSpec::sampled(8).to_string(), "sampled:rate=8");
    }

    #[test]
    fn degenerate_rates_are_rejected() {
        for bad in ["sampled:rate=0", "sampled:rate=1", "sampled:rate=3"] {
            let err = bad.parse::<CacheModeSpec>().unwrap_err();
            assert!(err.to_string().contains("power of two"), "{bad} -> {err}");
        }
    }

    #[test]
    fn unknown_modes_and_params_are_rejected_with_vocabulary() {
        let err = "oracle".parse::<CacheModeSpec>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown cache mode 'oracle'"), "{msg}");
        assert!(msg.contains("known modes"), "{msg}");
        assert!(msg.contains("exact"), "{msg}");
        let err = "exact:rate=2".parse::<CacheModeSpec>().unwrap_err();
        assert!(err.to_string().contains("takes no parameters"), "{err}");
        let err = "sampled:sets=2".parse::<CacheModeSpec>().unwrap_err();
        assert!(err.to_string().contains("has no parameter 'sets'"), "{err}");
    }

    #[test]
    fn help_lists_modes_and_parameters() {
        let help = CacheModeRegistry::global().help();
        assert!(help.contains("exact"), "{help}");
        assert!(help.contains("sampled"), "{help}");
        assert!(help.contains("analytic"), "{help}");
        assert!(help.contains("rate=<u64>"), "{help}");
    }

    #[test]
    fn separate_registries_are_independent() {
        let reg = CacheModeRegistry::empty();
        assert!(reg.names().is_empty());
        assert!(reg.validate("exact".to_string(), BTreeMap::new()).is_err());
    }
}
