//! Working-set profiling.
//!
//! The PDF scheduler's key property is that the *aggregate* working set of the
//! co-scheduled threads stays close to the sequential working set, while under WS
//! the per-core working sets are largely disjoint and their union grows with the
//! number of cores.  The profiler measures exactly that: the number of distinct
//! cache blocks touched in consecutive windows of the (global, interleaved) access
//! stream.

use crate::addr::BlockAddr;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Measures distinct blocks touched per fixed-size window of accesses.
#[derive(Debug, Clone)]
pub struct WorkingSetProfiler {
    window_accesses: u64,
    current: HashSet<BlockAddr>,
    in_window: u64,
    samples: Vec<usize>,
    all_time: HashSet<BlockAddr>,
}

/// Summary statistics of a profiled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetSummary {
    /// Size of each completed window, in accesses.
    pub window_accesses: u64,
    /// Distinct blocks per window (one entry per completed window).
    pub per_window_blocks: Vec<usize>,
    /// Largest window working set.
    pub peak_blocks: usize,
    /// Mean window working set.
    pub mean_blocks: f64,
    /// Distinct blocks touched over the whole run (the footprint).
    pub footprint_blocks: usize,
}

impl WorkingSetProfiler {
    /// Create a profiler that samples the working set every `window_accesses`
    /// accesses.
    ///
    /// # Panics
    ///
    /// Panics if `window_accesses` is zero.
    pub fn new(window_accesses: u64) -> Self {
        assert!(window_accesses > 0, "window must be at least one access");
        WorkingSetProfiler {
            window_accesses,
            current: HashSet::new(),
            in_window: 0,
            samples: Vec::new(),
            all_time: HashSet::new(),
        }
    }

    /// Record one access to `block`.
    pub fn record(&mut self, block: BlockAddr) {
        self.current.insert(block);
        self.all_time.insert(block);
        self.in_window += 1;
        if self.in_window == self.window_accesses {
            self.samples.push(self.current.len());
            self.current.clear();
            self.in_window = 0;
        }
    }

    /// Number of completed windows so far.
    pub fn completed_windows(&self) -> usize {
        self.samples.len()
    }

    /// Finish profiling: flush a partial final window (if any) and summarize.
    pub fn finish(mut self) -> WorkingSetSummary {
        if self.in_window > 0 {
            self.samples.push(self.current.len());
        }
        let peak = self.samples.iter().copied().max().unwrap_or(0);
        let mean = if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<usize>() as f64 / self.samples.len() as f64
        };
        WorkingSetSummary {
            window_accesses: self.window_accesses,
            peak_blocks: peak,
            mean_blocks: mean,
            footprint_blocks: self.all_time.len(),
            per_window_blocks: self.samples,
        }
    }
}

impl WorkingSetSummary {
    /// Peak working set expressed in bytes for the given line size.
    pub fn peak_bytes(&self, line_bytes: usize) -> usize {
        self.peak_blocks * line_bytes
    }

    /// Footprint expressed in bytes for the given line size.
    pub fn footprint_bytes(&self, line_bytes: usize) -> usize {
        self.footprint_blocks * line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_blocks_per_window() {
        let mut p = WorkingSetProfiler::new(4);
        // Window 1: blocks 1,1,2,3 -> 3 distinct.  Window 2: 4,4,4,4 -> 1 distinct.
        for b in [1u64, 1, 2, 3, 4, 4, 4, 4] {
            p.record(b);
        }
        let s = p.finish();
        assert_eq!(s.per_window_blocks, vec![3, 1]);
        assert_eq!(s.peak_blocks, 3);
        assert!((s.mean_blocks - 2.0).abs() < 1e-12);
        assert_eq!(s.footprint_blocks, 4);
    }

    #[test]
    fn partial_final_window_is_flushed() {
        let mut p = WorkingSetProfiler::new(10);
        p.record(1);
        p.record(2);
        let s = p.finish();
        assert_eq!(s.per_window_blocks, vec![2]);
    }

    #[test]
    fn empty_profile_is_all_zeros() {
        let s = WorkingSetProfiler::new(8).finish();
        assert_eq!(s.peak_blocks, 0);
        assert_eq!(s.mean_blocks, 0.0);
        assert_eq!(s.footprint_blocks, 0);
        assert!(s.per_window_blocks.is_empty());
    }

    #[test]
    fn byte_conversions_use_line_size() {
        let mut p = WorkingSetProfiler::new(2);
        p.record(1);
        p.record(2);
        let s = p.finish();
        assert_eq!(s.peak_bytes(64), 128);
        assert_eq!(s.footprint_bytes(64), 128);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = WorkingSetProfiler::new(0);
    }

    #[test]
    fn shared_stream_has_smaller_working_set_than_disjoint() {
        // Two "cores" touching the same 100 blocks vs. disjoint 100-block regions:
        // the interleaved working set doubles in the disjoint case.  This mirrors
        // how the profiler is used to compare PDF and WS.
        let mut shared = WorkingSetProfiler::new(200);
        let mut disjoint = WorkingSetProfiler::new(200);
        for i in 0..100u64 {
            shared.record(i);
            shared.record(i);
            disjoint.record(i);
            disjoint.record(1000 + i);
        }
        let s = shared.finish();
        let d = disjoint.finish();
        assert_eq!(s.peak_blocks, 100);
        assert_eq!(d.peak_blocks, 200);
    }
}
