//! Hit/miss/traffic counters for caches and the whole hierarchy.

use serde::{Deserialize, Serialize};

/// Counters for one cache (or one core's view of a cache level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Blocks evicted (capacity/conflict replacements).
    pub evictions: u64,
    /// Evicted blocks that were dirty and had to be written back.
    pub writebacks: u64,
    /// Lines invalidated by coherence or back-invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in [0, 1]; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.misses() as f64 / acc as f64
        }
    }

    /// Add another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.invalidations += other.invalidations;
    }
}

/// Aggregate statistics for a private-L1 / shared-L2 hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Per-core L1 statistics.
    pub l1: Vec<CacheStats>,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// Bytes transferred across the off-chip interface (fills from memory plus
    /// write-backs of dirty L2 victims).
    pub offchip_bytes: u64,
    /// Blocks fetched from memory (L2 misses that went off chip).
    pub memory_fills: u64,
    /// L1-to-L1 coherence invalidations (a write by one core invalidating copies
    /// held by other cores).
    pub coherence_invalidations: u64,
}

impl HierarchyStats {
    /// Create zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> Self {
        HierarchyStats {
            l1: vec![CacheStats::default(); cores],
            ..Default::default()
        }
    }

    /// Sum of L1 statistics across cores.
    pub fn l1_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1 {
            total.merge(s);
        }
        total
    }

    /// Total L2 misses (the paper's off-chip-traffic proxy).
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// L2 misses per 1000 of the given instruction count — the y-axis of the left
    /// panel of Figure 1.
    pub fn l2_misses_per_kilo_instruction(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.l2.misses() as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            read_hits: 10,
            read_misses: 5,
            write_hits: 3,
            write_misses: 2,
            evictions: 4,
            writebacks: 1,
            invalidations: 0,
        }
    }

    #[test]
    fn totals_are_consistent() {
        let s = sample();
        assert_eq!(s.accesses(), 20);
        assert_eq!(s.hits(), 13);
        assert_eq!(s.misses(), 7);
        assert!((s.miss_ratio() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_miss_ratio() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.accesses(), 40);
        assert_eq!(a.evictions, 8);
        assert_eq!(a.writebacks, 2);
    }

    #[test]
    fn hierarchy_l1_total_sums_cores() {
        let mut h = HierarchyStats::new(3);
        h.l1[0] = sample();
        h.l1[2] = sample();
        assert_eq!(h.l1_total().accesses(), 40);
    }

    #[test]
    fn mpki_definition() {
        let mut h = HierarchyStats::new(1);
        h.l2.read_misses = 5;
        h.l2.write_misses = 5;
        assert!((h.l2_misses_per_kilo_instruction(10_000) - 1.0).abs() < 1e-12);
        assert_eq!(h.l2_misses_per_kilo_instruction(0), 0.0);
    }
}
