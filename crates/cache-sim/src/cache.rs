//! One set-associative, write-back / write-allocate cache level.

use crate::addr::BlockAddr;
use crate::replacement::{ReplacementPolicy, SetReplacementState};
use crate::stats::CacheStats;
use pdfws_cmp_model::CacheGeometry;

/// Whether an access reads or writes the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (marks the line dirty).
    Write,
}

/// A block evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The evicted block's address.
    pub block: BlockAddr,
    /// Whether the evicted line was dirty (requires a write-back).
    pub dirty: bool,
}

/// Outcome of a single access to one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccessResult {
    /// Whether the block was already present.
    pub hit: bool,
    /// A block that had to be evicted to fill the new one (misses only).
    pub evicted: Option<EvictedBlock>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    dirty: bool,
    valid: bool,
}

impl Line {
    const INVALID: Line = Line {
        block: 0,
        dirty: false,
        valid: false,
    };
}

#[derive(Debug, Clone)]
struct CacheSet {
    lines: Vec<Line>,
    repl: SetReplacementState,
}

/// A set-associative cache with write-back, write-allocate semantics.
///
/// The cache stores block addresses only (no data): the simulator cares about
/// hits, misses, evictions and write-backs, not values.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<CacheSet>,
    stats: CacheStats,
    set_mask: u64,
}

impl Cache {
    /// Build a cache with the given geometry and replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate; configurations coming from
    /// `pdfws-cmp-model` always do.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        geometry
            .validate()
            .expect("cache geometry must be valid (validated by pdfws-cmp-model)");
        let num_sets = geometry.sets();
        let sets = (0..num_sets)
            .map(|i| CacheSet {
                lines: vec![Line::INVALID; geometry.associativity],
                repl: SetReplacementState::new(policy, geometry.associativity, i),
            })
            .collect();
        Cache {
            geometry,
            policy,
            sets,
            stats: CacheStats::default(),
            set_mask: (num_sets - 1) as u64,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset the statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        (block & self.set_mask) as usize
    }

    /// Access `block`; on a miss the block is filled (write-allocate), possibly
    /// evicting another block from the same set.
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> CacheAccessResult {
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way) = set.lines.iter().position(|l| l.valid && l.block == block) {
            set.repl.on_hit(way);
            if kind == AccessKind::Write {
                set.lines[way].dirty = true;
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return CacheAccessResult {
                hit: true,
                evicted: None,
            };
        }

        // Miss: count it, then fill.
        if kind == AccessKind::Write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }

        // Prefer an invalid way; otherwise ask the replacement policy.
        let (way, evicted) = if let Some(way) = set.lines.iter().position(|l| !l.valid) {
            (way, None)
        } else {
            let victim = set.repl.victim();
            let old = set.lines[victim];
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            (
                victim,
                Some(EvictedBlock {
                    block: old.block,
                    dirty: old.dirty,
                }),
            )
        };

        set.lines[way] = Line {
            block,
            dirty: kind == AccessKind::Write,
            valid: true,
        };
        set.repl.on_fill(way);

        CacheAccessResult {
            hit: false,
            evicted,
        }
    }

    /// Check whether `block` is present without disturbing replacement state or
    /// statistics.
    pub fn probe(&self, block: BlockAddr) -> bool {
        let set = &self.sets[self.set_index(block)];
        set.lines.iter().any(|l| l.valid && l.block == block)
    }

    /// Mark `block` dirty if it is resident, without touching statistics or
    /// replacement order.  Used to sink write-backs from an upper level into this
    /// one.  Returns whether the block was present.
    pub fn set_dirty(&mut self, block: BlockAddr) -> bool {
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.lines.iter().position(|l| l.valid && l.block == block) {
            set.lines[way].dirty = true;
            true
        } else {
            false
        }
    }

    /// Invalidate `block` if present.  Returns `Some(dirty)` if a line was
    /// invalidated, `None` if the block was not cached.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.lines.iter().position(|l| l.valid && l.block == block) {
            let dirty = set.lines[way].dirty;
            set.lines[way] = Line::INVALID;
            self.stats.invalidations += 1;
            Some(dirty)
        } else {
            None
        }
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.lines.iter().filter(|l| l.valid).count())
            .sum()
    }

    /// Iterate over all resident block addresses (used by tests and the working-set
    /// profiler; order is unspecified).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter().filter(|l| l.valid).map(|l| l.block))
    }

    /// Drop every line (contents and replacement state), keeping statistics.
    pub fn flush(&mut self) {
        let assoc = self.geometry.associativity;
        for (i, set) in self.sets.iter_mut().enumerate() {
            set.lines = vec![Line::INVALID; assoc];
            set.repl = SetReplacementState::new(self.policy, assoc, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(capacity: usize, assoc: usize) -> Cache {
        let g = CacheGeometry {
            capacity_bytes: capacity,
            line_bytes: 64,
            associativity: assoc,
            latency_cycles: 1,
        };
        Cache::new(g, ReplacementPolicy::Lru)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny_cache(4096, 4);
        let first = c.access(7, AccessKind::Read);
        assert!(!first.hit);
        assert!(first.evicted.is_none());
        let second = c.access(7, AccessKind::Read);
        assert!(second.hit);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn write_allocate_marks_dirty_and_writes_back() {
        // Direct-mapped cache with 2 sets: blocks 0 and 2 collide in set 0.
        let mut c = tiny_cache(128, 1);
        assert_eq!(c.geometry().sets(), 2);
        c.access(0, AccessKind::Write);
        let r = c.access(2, AccessKind::Read);
        assert!(!r.hit);
        let ev = r.evicted.expect("block 0 must be evicted");
        assert_eq!(ev.block, 0);
        assert!(ev.dirty, "written block must be dirty on eviction");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_not_a_writeback() {
        let mut c = tiny_cache(128, 1);
        c.access(0, AccessKind::Read);
        let r = c.access(2, AccessKind::Read);
        assert!(!r.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_keeps_the_hot_block() {
        // One set, 2 ways: blocks 0, 2, 4 all map to set 0 (2 sets -> even blocks).
        let mut c = tiny_cache(256, 2);
        assert_eq!(c.geometry().sets(), 2);
        c.access(0, AccessKind::Read);
        c.access(2, AccessKind::Read);
        c.access(0, AccessKind::Read); // 0 is now MRU
        let r = c.access(4, AccessKind::Read); // evicts 2
        assert_eq!(r.evicted.unwrap().block, 2);
        assert!(c.probe(0));
        assert!(!c.probe(2));
    }

    #[test]
    fn working_set_within_capacity_never_evicts() {
        let mut c = tiny_cache(64 * 1024, 8);
        let lines = c.geometry().lines() as u64;
        for round in 0..3 {
            for b in 0..lines {
                let r = c.access(b, AccessKind::Read);
                assert!(r.evicted.is_none(), "round {round} block {b}");
            }
        }
        assert_eq!(c.occupancy(), lines as usize);
        assert_eq!(c.stats().misses(), lines);
        assert_eq!(c.stats().hits(), 2 * lines);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_with_lru_sequential_scan() {
        let mut c = tiny_cache(4096, 4);
        let lines = c.geometry().lines() as u64;
        // Scan twice over twice-capacity: classic LRU worst case, everything misses.
        for _ in 0..2 {
            for b in 0..2 * lines {
                c.access(b, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits(), 0);
        assert_eq!(c.stats().misses(), 4 * lines);
    }

    #[test]
    fn invalidate_removes_block_and_reports_dirty() {
        let mut c = tiny_cache(4096, 4);
        c.access(10, AccessKind::Write);
        c.access(11, AccessKind::Read);
        assert_eq!(c.invalidate(10), Some(true));
        assert_eq!(c.invalidate(11), Some(false));
        assert_eq!(c.invalidate(12), None);
        assert!(!c.probe(10));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn probe_does_not_change_stats_or_order() {
        let mut c = tiny_cache(256, 2);
        c.access(0, AccessKind::Read);
        c.access(2, AccessKind::Read);
        let before = *c.stats();
        // Probing block 0 many times must not make it MRU.
        for _ in 0..10 {
            assert!(c.probe(0));
        }
        assert_eq!(*c.stats(), before);
        c.access(4, AccessKind::Read); // LRU is still 0
        assert!(!c.probe(0));
        assert!(c.probe(2));
    }

    #[test]
    fn flush_empties_cache_but_keeps_stats() {
        let mut c = tiny_cache(4096, 4);
        for b in 0..10 {
            c.access(b, AccessKind::Read);
        }
        let misses = c.stats().misses();
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().misses(), misses);
        // Everything misses again after the flush.
        c.access(0, AccessKind::Read);
        assert_eq!(c.stats().misses(), misses + 1);
    }

    #[test]
    fn resident_blocks_lists_exactly_the_contents() {
        let mut c = tiny_cache(4096, 4);
        for b in [3u64, 17, 99] {
            c.access(b, AccessKind::Read);
        }
        let mut blocks: Vec<_> = c.resident_blocks().collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![3, 17, 99]);
    }

    #[test]
    fn set_dirty_only_affects_resident_blocks() {
        let mut c = tiny_cache(128, 1);
        c.access(0, AccessKind::Read);
        let before = *c.stats();
        assert!(c.set_dirty(0));
        assert!(!c.set_dirty(99));
        assert_eq!(*c.stats(), before, "set_dirty must not change stats");
        // The dirtied block now requires a write-back when evicted.
        let r = c.access(2, AccessKind::Read);
        assert!(r.evicted.unwrap().dirty);
    }

    #[test]
    fn occupancy_never_exceeds_line_count() {
        let mut c = tiny_cache(2048, 2);
        for b in 0..10_000u64 {
            c.access(b % 77, AccessKind::Read);
            assert!(c.occupancy() <= c.geometry().lines());
        }
    }
}
