//! One set-associative, write-back / write-allocate cache level.

use crate::addr::BlockAddr;
use crate::replacement::{next_random, oldest_way, set_rng_seed, ReplacementPolicy};
use crate::stats::CacheStats;
use pdfws_cmp_model::CacheGeometry;

/// Whether an access reads or writes the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (marks the line dirty).
    Write,
}

/// A block evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The evicted block's address.
    pub block: BlockAddr,
    /// Whether the evicted line was dirty (requires a write-back).
    pub dirty: bool,
}

/// Outcome of a single access to one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccessResult {
    /// Whether the block was already present.
    pub hit: bool,
    /// A block that had to be evicted to fill the new one (misses only).
    pub evicted: Option<EvictedBlock>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    dirty: bool,
    valid: bool,
}

impl Line {
    const INVALID: Line = Line {
        block: 0,
        dirty: false,
        valid: false,
    };
}

/// A set-associative cache with write-back, write-allocate semantics.
///
/// The cache stores block addresses only (no data): the simulator cares about
/// hits, misses, evictions and write-backs, not values.
///
/// Storage is flat: all lines live in one set-major array (`sets × ways`), with
/// a parallel stamp array for the replacement order and one RNG word per set
/// for the Random policy.  An access therefore touches exactly one contiguous
/// `associativity`-sized window — no per-set heap structures on the hot path.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    /// All lines, set-major: set `s` owns `lines[s*assoc .. (s+1)*assoc]`.
    lines: Box<[Line]>,
    /// Replacement stamps parallel to `lines` (recency for LRU, fill time for
    /// FIFO; unused for Random).
    stamps: Box<[u64]>,
    /// Per-set xorshift state for the Random policy.
    rng: Box<[u64]>,
    /// Cache-global monotone stamp counter (ordering is only compared within a
    /// set, so one clock serves every set).
    clock: u64,
    stats: CacheStats,
    set_mask: u64,
    assoc: usize,
}

impl Cache {
    /// Build a cache with the given geometry and replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate; configurations coming from
    /// `pdfws-cmp-model` always do.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        geometry
            .validate()
            .expect("cache geometry must be valid (validated by pdfws-cmp-model)");
        let num_sets = geometry.sets();
        let assoc = geometry.associativity;
        Cache {
            geometry,
            policy,
            lines: vec![Line::INVALID; num_sets * assoc].into_boxed_slice(),
            stamps: vec![0; num_sets * assoc].into_boxed_slice(),
            rng: (0..num_sets).map(set_rng_seed).collect(),
            clock: 0,
            stats: CacheStats::default(),
            set_mask: (num_sets - 1) as u64,
            assoc,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset the statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// First line index of the set `block` maps to.
    #[inline]
    fn set_base(&self, block: BlockAddr) -> usize {
        (block & self.set_mask) as usize * self.assoc
    }

    /// Access `block`; on a miss the block is filled (write-allocate), possibly
    /// evicting another block from the same set.
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> CacheAccessResult {
        let base = self.set_base(block);
        let set = &mut self.lines[base..base + self.assoc];

        // One scan finds both the hit way and the first free way.
        let mut free_way = usize::MAX;
        let mut hit_way = usize::MAX;
        for (way, line) in set.iter().enumerate() {
            if !line.valid {
                if free_way == usize::MAX {
                    free_way = way;
                }
            } else if line.block == block {
                hit_way = way;
                break;
            }
        }

        self.clock += 1;

        if hit_way != usize::MAX {
            if kind == AccessKind::Write {
                set[hit_way].dirty = true;
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            if self.policy == ReplacementPolicy::Lru {
                self.stamps[base + hit_way] = self.clock;
            }
            return CacheAccessResult {
                hit: true,
                evicted: None,
            };
        }

        // Miss: count it, then fill — a free way if one exists, else the
        // policy's victim.
        if kind == AccessKind::Write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }

        let (way, evicted) = if free_way != usize::MAX {
            (free_way, None)
        } else {
            let way = match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    oldest_way(&self.stamps[base..base + self.assoc])
                }
                ReplacementPolicy::Random => {
                    let set_idx = base / self.assoc;
                    (next_random(&mut self.rng[set_idx]) % self.assoc as u64) as usize
                }
            };
            let old = set[way];
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            (
                way,
                Some(EvictedBlock {
                    block: old.block,
                    dirty: old.dirty,
                }),
            )
        };

        set[way] = Line {
            block,
            dirty: kind == AccessKind::Write,
            valid: true,
        };
        if self.policy != ReplacementPolicy::Random {
            self.stamps[base + way] = self.clock;
        }

        CacheAccessResult {
            hit: false,
            evicted,
        }
    }

    /// Check whether `block` is present without disturbing replacement state or
    /// statistics.
    pub fn probe(&self, block: BlockAddr) -> bool {
        let base = self.set_base(block);
        self.lines[base..base + self.assoc]
            .iter()
            .any(|l| l.valid && l.block == block)
    }

    /// Mark `block` dirty if it is resident, without touching statistics or
    /// replacement order.  Used to sink write-backs from an upper level into this
    /// one.  Returns whether the block was present.
    pub fn set_dirty(&mut self, block: BlockAddr) -> bool {
        let base = self.set_base(block);
        for line in &mut self.lines[base..base + self.assoc] {
            if line.valid && line.block == block {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidate `block` if present.  Returns `Some(dirty)` if a line was
    /// invalidated, `None` if the block was not cached.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let base = self.set_base(block);
        for line in &mut self.lines[base..base + self.assoc] {
            if line.valid && line.block == block {
                let dirty = line.dirty;
                *line = Line::INVALID;
                self.stats.invalidations += 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterate over all resident block addresses (used by tests and the working-set
    /// profiler; order is unspecified).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.lines.iter().filter(|l| l.valid).map(|l| l.block)
    }

    /// Drop every line (contents and replacement state), keeping statistics.
    pub fn flush(&mut self) {
        self.lines.fill(Line::INVALID);
        self.stamps.fill(0);
        for (set_idx, state) in self.rng.iter_mut().enumerate() {
            *state = set_rng_seed(set_idx);
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(capacity: usize, assoc: usize) -> Cache {
        tiny_cache_with(capacity, assoc, ReplacementPolicy::Lru)
    }

    fn tiny_cache_with(capacity: usize, assoc: usize, policy: ReplacementPolicy) -> Cache {
        let g = CacheGeometry {
            capacity_bytes: capacity,
            line_bytes: 64,
            associativity: assoc,
            latency_cycles: 1,
        };
        Cache::new(g, policy)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny_cache(4096, 4);
        let first = c.access(7, AccessKind::Read);
        assert!(!first.hit);
        assert!(first.evicted.is_none());
        let second = c.access(7, AccessKind::Read);
        assert!(second.hit);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn write_allocate_marks_dirty_and_writes_back() {
        // Direct-mapped cache with 2 sets: blocks 0 and 2 collide in set 0.
        let mut c = tiny_cache(128, 1);
        assert_eq!(c.geometry().sets(), 2);
        c.access(0, AccessKind::Write);
        let r = c.access(2, AccessKind::Read);
        assert!(!r.hit);
        let ev = r.evicted.expect("block 0 must be evicted");
        assert_eq!(ev.block, 0);
        assert!(ev.dirty, "written block must be dirty on eviction");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_not_a_writeback() {
        let mut c = tiny_cache(128, 1);
        c.access(0, AccessKind::Read);
        let r = c.access(2, AccessKind::Read);
        assert!(!r.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_keeps_the_hot_block() {
        // One set, 2 ways: blocks 0, 2, 4 all map to set 0 (2 sets -> even blocks).
        let mut c = tiny_cache(256, 2);
        assert_eq!(c.geometry().sets(), 2);
        c.access(0, AccessKind::Read);
        c.access(2, AccessKind::Read);
        c.access(0, AccessKind::Read); // 0 is now MRU
        let r = c.access(4, AccessKind::Read); // evicts 2
        assert_eq!(r.evicted.unwrap().block, 2);
        assert!(c.probe(0));
        assert!(!c.probe(2));
    }

    #[test]
    fn fifo_ignores_hits() {
        // One set, 2 ways under FIFO: re-touching block 0 must not save it.
        let mut c = tiny_cache_with(256, 2, ReplacementPolicy::Fifo);
        c.access(0, AccessKind::Read);
        c.access(2, AccessKind::Read);
        c.access(0, AccessKind::Read); // hit; FIFO order unchanged
        let r = c.access(4, AccessKind::Read); // evicts 0, the earliest fill
        assert_eq!(r.evicted.unwrap().block, 0);
        assert!(c.probe(2));
        assert!(!c.probe(0));
    }

    #[test]
    fn random_policy_is_deterministic_across_identical_caches() {
        let run = || {
            let mut c = tiny_cache_with(4096, 4, ReplacementPolicy::Random);
            for b in 0..10_000u64 {
                c.access(b % 509, AccessKind::Read);
            }
            (*c.stats(), c.resident_blocks().collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn working_set_within_capacity_never_evicts() {
        let mut c = tiny_cache(64 * 1024, 8);
        let lines = c.geometry().lines() as u64;
        for round in 0..3 {
            for b in 0..lines {
                let r = c.access(b, AccessKind::Read);
                assert!(r.evicted.is_none(), "round {round} block {b}");
            }
        }
        assert_eq!(c.occupancy(), lines as usize);
        assert_eq!(c.stats().misses(), lines);
        assert_eq!(c.stats().hits(), 2 * lines);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_with_lru_sequential_scan() {
        let mut c = tiny_cache(4096, 4);
        let lines = c.geometry().lines() as u64;
        // Scan twice over twice-capacity: classic LRU worst case, everything misses.
        for _ in 0..2 {
            for b in 0..2 * lines {
                c.access(b, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits(), 0);
        assert_eq!(c.stats().misses(), 4 * lines);
    }

    #[test]
    fn invalidate_removes_block_and_reports_dirty() {
        let mut c = tiny_cache(4096, 4);
        c.access(10, AccessKind::Write);
        c.access(11, AccessKind::Read);
        assert_eq!(c.invalidate(10), Some(true));
        assert_eq!(c.invalidate(11), Some(false));
        assert_eq!(c.invalidate(12), None);
        assert!(!c.probe(10));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn probe_does_not_change_stats_or_order() {
        let mut c = tiny_cache(256, 2);
        c.access(0, AccessKind::Read);
        c.access(2, AccessKind::Read);
        let before = *c.stats();
        // Probing block 0 many times must not make it MRU.
        for _ in 0..10 {
            assert!(c.probe(0));
        }
        assert_eq!(*c.stats(), before);
        c.access(4, AccessKind::Read); // LRU is still 0
        assert!(!c.probe(0));
        assert!(c.probe(2));
    }

    #[test]
    fn flush_empties_cache_but_keeps_stats() {
        let mut c = tiny_cache(4096, 4);
        for b in 0..10 {
            c.access(b, AccessKind::Read);
        }
        let misses = c.stats().misses();
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().misses(), misses);
        // Everything misses again after the flush.
        c.access(0, AccessKind::Read);
        assert_eq!(c.stats().misses(), misses + 1);
    }

    #[test]
    fn resident_blocks_lists_exactly_the_contents() {
        let mut c = tiny_cache(4096, 4);
        for b in [3u64, 17, 99] {
            c.access(b, AccessKind::Read);
        }
        let mut blocks: Vec<_> = c.resident_blocks().collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![3, 17, 99]);
    }

    #[test]
    fn set_dirty_only_affects_resident_blocks() {
        let mut c = tiny_cache(128, 1);
        c.access(0, AccessKind::Read);
        let before = *c.stats();
        assert!(c.set_dirty(0));
        assert!(!c.set_dirty(99));
        assert_eq!(*c.stats(), before, "set_dirty must not change stats");
        // The dirtied block now requires a write-back when evicted.
        let r = c.access(2, AccessKind::Read);
        assert!(r.evicted.unwrap().dirty);
    }

    #[test]
    fn occupancy_never_exceeds_line_count() {
        let mut c = tiny_cache(2048, 2);
        for b in 0..10_000u64 {
            c.access(b % 77, AccessKind::Read);
            assert!(c.occupancy() <= c.geometry().lines());
        }
    }
}
