//! Replacement policies for the cache's sets.
//!
//! The study's caches use LRU; FIFO and a seeded pseudo-random policy are provided
//! for sensitivity experiments and to exercise the policy abstraction in tests.
//!
//! The policy state itself lives inside [`Cache`](crate::cache::Cache) as flat
//! per-line stamp and per-set RNG arrays (one contiguous allocation each, so the
//! access hot path touches no nested structures); this module holds the policy
//! enum and the pure decision helpers that operate on those arrays.

use serde::{Deserialize, Serialize};

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the default for every configuration in
    /// the paper).
    #[default]
    Lru,
    /// Evict the way that was filled earliest.
    Fifo,
    /// Evict a pseudo-random way (deterministic: xorshift seeded per set).
    Random,
}

/// Initial xorshift64* state for set `set_index`, chosen so every set draws a
/// different deterministic victim sequence.
#[inline]
pub(crate) fn set_rng_seed(set_index: usize) -> u64 {
    0x9E37_79B9_7F4A_7C15 ^ (set_index as u64 + 1)
}

/// Advance a set's xorshift64* state and return the next pseudo-random draw.
#[inline]
pub(crate) fn next_random(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The way with the smallest stamp — the LRU way when stamps are recency
/// timestamps, the FIFO head when they are fill timestamps.  Callers only ask
/// for a victim once every way has been filled, and the stamp clock is a
/// monotone counter, so the stamps are distinct.
#[inline]
pub(crate) fn oldest_way(stamps: &[u64]) -> usize {
    debug_assert!(!stamps.is_empty(), "sets have at least one way");
    let mut way = 0;
    let mut best = stamps[0];
    for (w, &stamp) in stamps.iter().enumerate().skip(1) {
        if stamp < best {
            best = stamp;
            way = w;
        }
    }
    way
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_way_picks_the_smallest_stamp() {
        assert_eq!(oldest_way(&[5, 3, 9, 4]), 1);
        assert_eq!(oldest_way(&[1]), 0);
        // First way wins a (theoretical) tie, matching the previous
        // `min_by_key` behavior.
        assert_eq!(oldest_way(&[2, 2, 2]), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_differs_across_sets() {
        let mut a = set_rng_seed(7);
        let mut b = set_rng_seed(7);
        let seq_a: Vec<u64> = (0..32).map(|_| next_random(&mut a) % 8).collect();
        let seq_b: Vec<u64> = (0..32).map(|_| next_random(&mut b) % 8).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().all(|&w| w < 8));
        let mut c = set_rng_seed(8);
        let seq_c: Vec<u64> = (0..32).map(|_| next_random(&mut c) % 8).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
