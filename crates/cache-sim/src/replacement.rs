//! Replacement policies for one cache set.
//!
//! The study's caches use LRU; FIFO and a seeded pseudo-random policy are provided
//! for sensitivity experiments and to exercise the policy abstraction in tests.

use serde::{Deserialize, Serialize};

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the default for every configuration in
    /// the paper).
    #[default]
    Lru,
    /// Evict the way that was filled earliest.
    Fifo,
    /// Evict a pseudo-random way (deterministic: xorshift seeded per set).
    Random,
}

/// Per-set replacement state.
///
/// Tracks enough information to pick a victim among `ways` ways under any of the
/// supported policies.  The cache itself stores tags and dirty bits; this struct
/// only orders the ways.
#[derive(Debug, Clone)]
pub struct SetReplacementState {
    policy: ReplacementPolicy,
    /// For LRU: `order[i]` is a recency timestamp (larger = more recent).
    /// For FIFO: fill timestamp.  Unused for Random.
    order: Vec<u64>,
    /// Monotone counter used to stamp touches / fills.
    clock: u64,
    /// Xorshift state for the Random policy (seeded from the set index so that the
    /// whole simulation stays deterministic).
    rng_state: u64,
}

impl SetReplacementState {
    /// Create state for a set with `ways` ways.
    pub fn new(policy: ReplacementPolicy, ways: usize, set_index: usize) -> Self {
        SetReplacementState {
            policy,
            order: vec![0; ways],
            clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15 ^ (set_index as u64 + 1),
        }
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Record that `way` was touched by a hit.
    pub fn on_hit(&mut self, way: usize) {
        self.clock += 1;
        match self.policy {
            ReplacementPolicy::Lru => self.order[way] = self.clock,
            ReplacementPolicy::Fifo | ReplacementPolicy::Random => {}
        }
    }

    /// Record that `way` was filled with a new block.
    pub fn on_fill(&mut self, way: usize) {
        self.clock += 1;
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.order[way] = self.clock,
            ReplacementPolicy::Random => {}
        }
    }

    /// Pick the way to evict among the occupied ways (callers first fill invalid
    /// ways, so every way is occupied when this is called).
    pub fn victim(&mut self) -> usize {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self
                .order
                .iter()
                .enumerate()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(i, _)| i)
                .expect("sets have at least one way"),
            ReplacementPolicy::Random => (self.next_random() % self.order.len() as u64) as usize,
        }
    }

    /// Number of ways this state tracks.
    pub fn ways(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut s = SetReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        for w in 0..4 {
            s.on_fill(w);
        }
        // Touch ways 0, 2, 3; way 1 is now LRU.
        s.on_hit(0);
        s.on_hit(2);
        s.on_hit(3);
        assert_eq!(s.victim(), 1);
        // Touch 1; now 0 is the stalest (filled first, touched before 2 and 3).
        s.on_hit(1);
        assert_eq!(s.victim(), 0);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = SetReplacementState::new(ReplacementPolicy::Fifo, 3, 0);
        s.on_fill(0);
        s.on_fill(1);
        s.on_fill(2);
        // Hitting way 0 must not save it under FIFO.
        s.on_hit(0);
        s.on_hit(0);
        assert_eq!(s.victim(), 0);
        // Refilling way 0 moves it to the back of the queue.
        s.on_fill(0);
        assert_eq!(s.victim(), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let mut a = SetReplacementState::new(ReplacementPolicy::Random, 8, 7);
        let mut b = SetReplacementState::new(ReplacementPolicy::Random, 8, 7);
        let seq_a: Vec<_> = (0..32).map(|_| a.victim()).collect();
        let seq_b: Vec<_> = (0..32).map(|_| b.victim()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().all(|&w| w < 8));
        // Different sets get different sequences (with overwhelming probability).
        let mut c = SetReplacementState::new(ReplacementPolicy::Random, 8, 8);
        let seq_c: Vec<_> = (0..32).map(|_| c.victim()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn lru_single_way_always_evicts_way_zero() {
        let mut s = SetReplacementState::new(ReplacementPolicy::Lru, 1, 0);
        s.on_fill(0);
        s.on_hit(0);
        assert_eq!(s.victim(), 0);
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
