//! The CMP memory hierarchy: per-core private L1s in front of one shared,
//! inclusive L2.
//!
//! This is the component the whole study runs on.  The hierarchy enforces
//! *inclusion* (a block present in any L1 is also present in the L2; evicting it
//! from the L2 back-invalidates every L1 copy) and a simple MSI-style write
//! -invalidate protocol between the L1s (a write by one core invalidates copies in
//! the other cores' L1s).  Each access reports where it was satisfied, how long it
//! took and how many bytes it moved across the off-chip interface, which is what
//! the execution engine needs to model bandwidth saturation.

use crate::addr::{Addr, BlockAddr};
use crate::cache::{AccessKind, Cache};
use crate::replacement::ReplacementPolicy;
use crate::stats::HierarchyStats;
use pdfws_cmp_model::CmpConfig;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-and-fold hasher for block addresses.
///
/// The sharer directory is probed on the access hot path; the standard
/// `HashMap` hasher (SipHash) costs more than the cache lookup it guards.
/// Block addresses are near-sequential integers, so one Fibonacci multiply
/// with a xor-fold mixes them plenty.
#[derive(Debug, Default, Clone)]
struct BlockAddrHasher(u64);

impl Hasher for BlockAddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("the directory only hashes u64 block addresses");
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type DirectoryMap = HashMap<BlockAddr, u64, BuildHasherDefault<BlockAddrHasher>>;

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Private L1 hit.
    L1,
    /// L1 miss satisfied by the shared L2.
    L2,
    /// L2 miss satisfied by main memory (off-chip).
    Memory,
}

/// Result of one memory access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Where the access was satisfied.
    pub level: Level,
    /// Latency of the access in cycles (hit latency of the satisfying level; the
    /// engine adds queueing delay for off-chip bandwidth separately).
    pub latency: u64,
    /// Bytes this access moved across the off-chip interface (line fill from
    /// memory plus any dirty L2 victim written back).
    pub offchip_bytes: u64,
}

impl AccessOutcome {
    /// Whether the access went off chip (L2 miss).
    pub fn is_offchip(&self) -> bool {
        self.level == Level::Memory
    }

    /// Whether the access was satisfied by the shared L2.
    pub fn hit_in_l2(&self) -> bool {
        self.level == Level::L2
    }

    /// Whether the access was satisfied by the core's private L1.
    pub fn hit_in_l1(&self) -> bool {
        self.level == Level::L1
    }
}

/// Private-L1s + shared-L2 hierarchy for one simulated CMP.
#[derive(Debug, Clone)]
pub struct CmpCacheHierarchy {
    l1s: Vec<Cache>,
    l2: Cache,
    line_bytes: u64,
    /// `log2(line_bytes)`, precomputed so `access` turns a byte address into a
    /// block number with one shift instead of re-deriving the shift per access.
    block_shift: u32,
    l1_latency: u64,
    l2_latency: u64,
    memory_latency: u64,
    /// For every block resident in at least one L1: bitmask of the cores holding it.
    ///
    /// Sized at construction for the worst case (every L1 line holding a
    /// distinct block), so the hot path never grows the table.
    directory: DirectoryMap,
    offchip_bytes: u64,
    memory_fills: u64,
    coherence_invalidations: u64,
}

impl CmpCacheHierarchy {
    /// Build the hierarchy described by a CMP configuration, with LRU replacement
    /// everywhere (the paper's setting).
    pub fn new(config: &CmpConfig) -> Self {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Build the hierarchy with an explicit replacement policy (sensitivity
    /// studies).
    pub fn with_policy(config: &CmpConfig, policy: ReplacementPolicy) -> Self {
        assert!(
            config.cores <= 64,
            "the sharer directory uses a 64-bit core mask"
        );
        let l1s: Vec<Cache> = (0..config.cores)
            .map(|_| Cache::new(config.l1, policy))
            .collect();
        let directory_capacity = config.cores * config.l1.lines();
        CmpCacheHierarchy {
            l1s,
            l2: Cache::new(config.l2, policy),
            line_bytes: config.l2.line_bytes as u64,
            block_shift: (config.l2.line_bytes as u64).trailing_zeros(),
            l1_latency: config.l1.latency_cycles,
            l2_latency: config.l2.latency_cycles,
            memory_latency: config.memory_latency_cycles,
            directory: DirectoryMap::with_capacity_and_hasher(
                directory_capacity,
                BuildHasherDefault::default(),
            ),
            offchip_bytes: 0,
            memory_fills: 0,
            coherence_invalidations: 0,
        }
    }

    /// Number of cores (private L1s).
    pub fn cores(&self) -> usize {
        self.l1s.len()
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Issue one access by `core` to byte address `addr`.
    #[inline]
    pub fn access(&mut self, core: usize, addr: Addr, write: bool) -> AccessOutcome {
        self.access_block(core, addr >> self.block_shift, write)
    }

    /// Issue one access by `core` to an already-computed block address.
    pub fn access_block(&mut self, core: usize, block: BlockAddr, write: bool) -> AccessOutcome {
        assert!(core < self.l1s.len(), "core {core} out of range");
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };

        let l1_result = self.l1s[core].access(block, kind);

        if l1_result.hit {
            if write {
                self.invalidate_other_sharers(block, core);
            }
            return AccessOutcome {
                level: Level::L1,
                latency: self.l1_latency,
                offchip_bytes: 0,
            };
        }

        // The L1 filled the block and may have evicted a victim; keep the
        // directory and the L2 dirty bits consistent.
        if let Some(victim) = l1_result.evicted {
            self.remove_sharer(victim.block, core);
            if victim.dirty {
                // Inclusion means the victim is normally still in the L2; if it
                // raced with an L2 eviction the write-back goes straight off chip.
                if !self.l2.set_dirty(victim.block) {
                    self.offchip_bytes += self.line_bytes;
                }
            }
        }

        // Mark this core as a sharer of the newly filled block and resolve write
        // invalidations against the other cores.
        self.add_sharer(block, core);
        if write {
            self.invalidate_other_sharers(block, core);
        }

        // Look up the shared L2.  Fills are reads from the L2's perspective; dirty
        // data only reaches the L2 through L1 write-backs.
        let l2_result = self.l2.access(block, AccessKind::Read);

        let mut offchip = 0u64;
        if let Some(victim) = l2_result.evicted {
            // Inclusion: every L1 copy of the victim must go.
            let victim_dirty_in_l1 = self.back_invalidate(victim.block);
            if victim.dirty || victim_dirty_in_l1 {
                offchip += self.line_bytes;
            }
        }

        if l2_result.hit {
            self.offchip_bytes += offchip;
            AccessOutcome {
                level: Level::L2,
                latency: self.l2_latency,
                offchip_bytes: offchip,
            }
        } else {
            offchip += self.line_bytes; // the fill itself
            self.offchip_bytes += offchip;
            self.memory_fills += 1;
            AccessOutcome {
                level: Level::Memory,
                latency: self.memory_latency,
                offchip_bytes: offchip,
            }
        }
    }

    fn add_sharer(&mut self, block: BlockAddr, core: usize) {
        *self.directory.entry(block).or_insert(0) |= 1 << core;
    }

    fn remove_sharer(&mut self, block: BlockAddr, core: usize) {
        if let Some(mask) = self.directory.get_mut(&block) {
            *mask &= !(1 << core);
            if *mask == 0 {
                self.directory.remove(&block);
            }
        }
    }

    /// Invalidate every other core's L1 copy of `block` (write-invalidate
    /// coherence).  Dirty remote copies are folded into the L2.
    fn invalidate_other_sharers(&mut self, block: BlockAddr, writer: usize) {
        let Some(&mask) = self.directory.get(&block) else {
            return;
        };
        let mut others = mask & !(1 << writer);
        if others == 0 {
            return;
        }
        while others != 0 {
            let core = others.trailing_zeros() as usize;
            others &= others - 1;
            if let Some(dirty) = self.l1s[core].invalidate(block) {
                self.coherence_invalidations += 1;
                if dirty {
                    self.l2.set_dirty(block);
                }
            }
        }
        self.directory.insert(block, 1 << writer);
    }

    /// Remove `block` from every L1 (inclusion back-invalidation).  Returns whether
    /// any evicted L1 copy was dirty.
    fn back_invalidate(&mut self, block: BlockAddr) -> bool {
        let Some(mask) = self.directory.remove(&block) else {
            return false;
        };
        let mut any_dirty = false;
        let mut remaining = mask;
        while remaining != 0 {
            let core = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            if let Some(dirty) = self.l1s[core].invalidate(block) {
                any_dirty |= dirty;
            }
        }
        any_dirty
    }

    /// Hit latency of the given level, in cycles.
    pub fn latency_of(&self, level: Level) -> u64 {
        match level {
            Level::L1 => self.l1_latency,
            Level::L2 => self.l2_latency,
            Level::Memory => self.memory_latency,
        }
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1s.iter().map(|c| *c.stats()).collect(),
            l2: *self.l2.stats(),
            offchip_bytes: self.offchip_bytes,
            memory_fills: self.memory_fills,
            coherence_invalidations: self.coherence_invalidations,
        }
    }

    /// Reset all statistics, keeping cache contents (used to exclude warm-up).
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1s {
            c.reset_stats();
        }
        self.l2.reset_stats();
        self.offchip_bytes = 0;
        self.memory_fills = 0;
        self.coherence_invalidations = 0;
    }

    /// Flush every cache (contents and directory), keeping statistics.  Used to
    /// model a context switch that destroys cache state.
    pub fn flush(&mut self) {
        for c in &mut self.l1s {
            c.flush();
        }
        self.l2.flush();
        self.directory.clear();
    }

    /// Number of distinct blocks currently resident in the shared L2.
    pub fn l2_occupancy(&self) -> usize {
        self.l2.occupancy()
    }

    /// Direct read-only access to the shared L2 (tests, working-set analysis).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Direct read-only access to core `i`'s L1.
    pub fn l1(&self, core: usize) -> &Cache {
        &self.l1s[core]
    }

    /// Check the inclusion invariant: every block in any L1 is also in the L2.
    /// Intended for tests and debug assertions; O(L1 lines × 1 probe).
    pub fn check_inclusion(&self) -> bool {
        self.l1s
            .iter()
            .all(|l1| l1.resident_blocks().all(|b| self.l2.probe(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdfws_cmp_model::{config::config_for, default_config, AreaModel, ProcessNode};

    fn small_config(cores: usize) -> CmpConfig {
        let mut cfg = config_for(cores, ProcessNode::Nm32, &AreaModel::default()).unwrap();
        // Shrink caches so capacity effects show up quickly in tests.
        cfg.l1.capacity_bytes = 4 * 1024;
        cfg.l2.capacity_bytes = 64 * 1024;
        cfg.l2.associativity = 8;
        cfg.validate().unwrap();
        cfg
    }

    #[test]
    fn cold_miss_then_l2_hit_from_other_core() {
        let cfg = default_config(4).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        let first = h.access(0, 0x1000, false);
        assert_eq!(first.level, Level::Memory);
        assert_eq!(first.offchip_bytes, h.line_bytes());
        let second = h.access(1, 0x1000, false);
        assert_eq!(second.level, Level::L2);
        assert_eq!(second.offchip_bytes, 0);
        let third = h.access(1, 0x1000, false);
        assert_eq!(third.level, Level::L1);
    }

    #[test]
    fn latencies_come_from_the_configuration() {
        let cfg = default_config(2).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        let miss = h.access(0, 0, false);
        assert_eq!(miss.latency, cfg.memory_latency_cycles);
        let l1_hit = h.access(0, 0, false);
        assert_eq!(l1_hit.latency, cfg.l1.latency_cycles);
        let l2_hit = h.access(1, 0, false);
        assert_eq!(l2_hit.latency, cfg.l2.latency_cycles);
    }

    #[test]
    fn same_line_accesses_do_not_go_offchip_twice() {
        let cfg = default_config(1).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        h.access(0, 0, false);
        for offset in 1..64 {
            let o = h.access(0, offset, false);
            assert_eq!(o.level, Level::L1, "offset {offset} is in the same line");
        }
        assert_eq!(h.stats().memory_fills, 1);
    }

    #[test]
    fn write_by_one_core_invalidates_the_other_l1_copy() {
        let cfg = default_config(2).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        h.access(0, 0x40, false);
        h.access(1, 0x40, false);
        assert!(h.l1(0).probe(1));
        assert!(h.l1(1).probe(1));
        // Core 0 writes the block: core 1's copy must be invalidated.
        h.access(0, 0x40, true);
        assert!(h.l1(0).probe(1));
        assert!(!h.l1(1).probe(1));
        assert_eq!(h.stats().coherence_invalidations, 1);
        // Core 1 re-reads: L2 hit, not off-chip.
        let o = h.access(1, 0x40, false);
        assert_eq!(o.level, Level::L2);
    }

    #[test]
    fn dirty_data_survives_via_l2_after_invalidation() {
        let cfg = small_config(2);
        let mut h = CmpCacheHierarchy::new(&cfg);
        // Core 0 writes a block, core 1 then writes the same block: core 0's dirty
        // copy is invalidated and folded into the L2, which must now be dirty.  We
        // observe this indirectly: evicting that block from the L2 produces
        // off-chip write-back traffic.
        h.access(0, 0, true);
        h.access(1, 0, true);
        let before = h.stats().offchip_bytes;
        // Stream enough distinct blocks through the L2 to evict block 0.
        let lines = (cfg.l2.capacity_bytes / cfg.l2.line_bytes) as u64;
        for i in 1..=2 * lines {
            h.access(0, i * 64, false);
        }
        let after = h.stats().offchip_bytes;
        // Traffic must include at least one write-back beyond the pure fills.
        let fills = h.stats().memory_fills * h.line_bytes();
        assert!(after > before);
        assert!(after > fills, "write-backs must add to off-chip traffic");
    }

    #[test]
    fn inclusion_holds_under_random_traffic() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let cfg = small_config(4);
        let mut h = CmpCacheHierarchy::new(&cfg);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20_000 {
            let core = rng.gen_range(0..4);
            let addr = rng.gen_range(0..512u64) * 64;
            let write = rng.gen_bool(0.3);
            h.access(core, addr, write);
        }
        assert!(h.check_inclusion(), "inclusion invariant violated");
    }

    #[test]
    fn disjoint_working_sets_thrash_a_small_shared_l2() {
        // Two cores streaming over disjoint regions that together exceed the L2
        // generate more off-chip traffic than two cores sharing one region of the
        // same total size.  This is the constructive-sharing effect in miniature.
        let cfg = small_config(2);

        let mut disjoint = CmpCacheHierarchy::new(&cfg);
        let blocks = (cfg.l2.capacity_bytes / cfg.l2.line_bytes) as u64;
        for round in 0..4 {
            let _ = round;
            for i in 0..blocks {
                disjoint.access(0, i * 64, false);
                disjoint.access(1, (blocks + i) * 64, false);
            }
        }

        let mut shared = CmpCacheHierarchy::new(&cfg);
        for round in 0..4 {
            let _ = round;
            for i in 0..blocks {
                shared.access(0, i * 64, false);
                shared.access(1, i * 64, false);
            }
        }

        let disjoint_misses = disjoint.stats().l2_misses();
        let shared_misses = shared.stats().l2_misses();
        assert!(
            disjoint_misses > 2 * shared_misses,
            "disjoint {disjoint_misses} vs shared {shared_misses}"
        );
    }

    #[test]
    fn flush_models_a_cold_cache() {
        let cfg = default_config(2).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        h.access(0, 0, false);
        h.access(0, 0, false);
        h.flush();
        let o = h.access(0, 0, false);
        assert_eq!(o.level, Level::Memory);
        assert!(h.check_inclusion());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let cfg = default_config(2).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        h.access(0, 0, false);
        h.reset_stats();
        assert_eq!(h.stats().memory_fills, 0);
        let o = h.access(0, 0, false);
        assert_eq!(o.level, Level::L1, "contents must survive a stats reset");
    }

    #[test]
    fn stats_level_accounting_is_consistent() {
        let cfg = small_config(2);
        let mut h = CmpCacheHierarchy::new(&cfg);
        let mut l1_hits = 0u64;
        let mut l2_hits = 0u64;
        let mut mem = 0u64;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut accesses = 0u64;
        for _ in 0..5_000 {
            let core = rng.gen_range(0..2);
            let addr = rng.gen_range(0..256u64) * 64;
            match h.access(core, addr, rng.gen_bool(0.2)).level {
                Level::L1 => l1_hits += 1,
                Level::L2 => l2_hits += 1,
                Level::Memory => mem += 1,
            }
            accesses += 1;
        }
        let s = h.stats();
        assert_eq!(s.l1_total().accesses(), accesses);
        assert_eq!(s.l1_total().hits(), l1_hits);
        assert_eq!(s.l2.accesses(), l2_hits + mem);
        assert_eq!(s.l2.misses(), mem);
        assert_eq!(s.memory_fills, mem);
        assert!(s.offchip_bytes >= mem * h.line_bytes());
    }

    #[test]
    fn core_out_of_range_panics() {
        let cfg = default_config(2).unwrap();
        let mut h = CmpCacheHierarchy::new(&cfg);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.access(5, 0, false);
        }));
        assert!(result.is_err());
    }
}
