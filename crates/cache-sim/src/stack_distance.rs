//! One-pass LRU stack-distance (reuse-distance) profiling.
//!
//! The stack distance of an access is the number of *distinct* blocks touched
//! since the previous access to the same block.  Under a fully-associative
//! LRU cache of `S` blocks an access hits iff its stack distance is `< S`, so
//! one histogram of distances prices the same address stream against **every**
//! cache size at once — the machinery behind the `cache=analytic` simulation
//! mode (and the validation theory in "Analysis of Work-Stealing and Parallel
//! Cache Complexity", see PAPERS.md).
//!
//! [`StackDistanceProfiler`] runs in `O(n log m)` time and `O(m)` memory for
//! `n` accesses over `m` distinct blocks: a Fenwick tree counts live
//! last-access positions, and the position space is renumbered whenever it
//! grows past twice the live-block count, so profiling a multi-gigabyte
//! address stream never allocates more than a few megabytes.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-and-fold hasher for block addresses (same rationale as the
/// hierarchy's sharer directory: SipHash costs more than the work it guards,
/// and near-sequential block numbers mix fine with one Fibonacci multiply).
#[derive(Debug, Default, Clone)]
struct BlockHasher(u64);

impl Hasher for BlockHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("the profiler only hashes u64 block addresses");
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type LastAccessMap = HashMap<u64, u32, BuildHasherDefault<BlockHasher>>;

/// Number of exact (width-1) buckets at the head of a histogram; distances
/// `>= EXACT_BUCKETS` fall into logarithmically scaled buckets.
const EXACT_BUCKETS: u64 = 256;

/// Sub-buckets per octave above the exact range (16 → bucket width grows
/// ~4.4% per bucket, comfortably finer than cache-size steps).
const LOG_SUB_BUCKETS: u64 = 16;

/// A compact histogram of stack distances: exact counts below
/// `EXACT_BUCKETS` (256), log-scaled buckets above, plus a cold-miss count
/// for first-touch accesses (infinite distance — they miss in every finite
/// cache).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistanceHistogram {
    /// Bucket counts, indexed by [`bucket_of`].
    counts: Vec<u64>,
    /// First-touch accesses (no previous access to the block).
    cold: u64,
    /// Total finite-distance accesses recorded.
    recorded: u64,
}

/// Bucket index for a finite distance.
#[inline]
fn bucket_of(distance: u64) -> usize {
    if distance < EXACT_BUCKETS {
        return distance as usize;
    }
    // Octave = position of the leading bit above the exact range; sub-bucket
    // from the next log2(LOG_SUB_BUCKETS) bits.
    let bits = 63 - distance.leading_zeros() as u64; // floor(log2(distance))
    let base_bits = 63 - EXACT_BUCKETS.leading_zeros() as u64; // log2(EXACT_BUCKETS)
    let octave = bits - base_bits;
    let sub = (distance >> (bits.saturating_sub(4))) & (LOG_SUB_BUCKETS - 1);
    (EXACT_BUCKETS + octave * LOG_SUB_BUCKETS + sub) as usize
}

/// Smallest distance mapping to bucket `index` (inverse of [`bucket_of`] on
/// bucket lower edges).
fn bucket_lo(index: usize) -> u64 {
    let index = index as u64;
    if index < EXACT_BUCKETS {
        return index;
    }
    let base_bits = 63 - EXACT_BUCKETS.leading_zeros() as u64;
    let octave = (index - EXACT_BUCKETS) / LOG_SUB_BUCKETS;
    let sub = (index - EXACT_BUCKETS) % LOG_SUB_BUCKETS;
    let bits = base_bits + octave;
    (1u64 << bits) | (sub << bits.saturating_sub(4))
}

/// Exclusive upper edge of bucket `index`.
fn bucket_hi(index: usize) -> u64 {
    if (index as u64) < EXACT_BUCKETS {
        return index as u64 + 1;
    }
    bucket_lo(index + 1)
}

impl DistanceHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access with a finite stack distance.
    #[inline]
    pub fn record(&mut self, distance: u64) {
        let b = bucket_of(distance);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.recorded += 1;
    }

    /// Record one first-touch (cold) access.
    #[inline]
    pub fn record_cold(&mut self) {
        self.cold += 1;
    }

    /// Total accesses recorded (finite + cold).
    pub fn total(&self) -> u64 {
        self.recorded + self.cold
    }

    /// First-touch accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Number of recorded accesses with stack distance `< capacity_blocks` —
    /// the hits a fully-associative LRU cache of that many blocks would see.
    /// The bucket straddling the boundary is split pro-rata (deterministic
    /// integer interpolation); cold accesses never count as hits.
    pub fn count_below(&self, capacity_blocks: u64) -> u64 {
        if capacity_blocks == 0 {
            return 0;
        }
        let boundary = bucket_of(capacity_blocks - 1);
        let mut hits = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if i < boundary {
                hits += c;
            } else if i == boundary {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i);
                // Distances lo..capacity_blocks (out of lo..hi) are hits.
                let span = hi - lo;
                let covered = capacity_blocks - lo;
                hits += if covered >= span {
                    c
                } else {
                    (c as u128 * covered as u128 / span as u128) as u64
                };
            } else {
                break;
            }
        }
        hits
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &DistanceHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.cold += other.cold;
        self.recorded += other.recorded;
    }
}

/// Fenwick (binary indexed) tree over last-access positions.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    /// Add `delta` (±1) at position `i` (0-based).
    #[inline]
    fn add(&mut self, i: u32, delta: i32) {
        let mut i = i as usize + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    #[inline]
    fn prefix(&self, i: u32) -> u64 {
        let mut i = i as usize + 1;
        let mut sum = 0u64;
        while i > 0 {
            sum += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Streaming stack-distance profiler: feed block addresses in program order,
/// read distances back one per access.
#[derive(Debug, Clone)]
pub struct StackDistanceProfiler {
    /// Block → position of its last access in the (renumbered) time space.
    last: LastAccessMap,
    fenwick: Fenwick,
    /// Next free position; when it reaches the Fenwick capacity the position
    /// space is renumbered (compacted to the live blocks).
    next_pos: u32,
    /// Live (distinct) blocks — positions currently holding a 1.
    live: u64,
}

/// Initial/minimum position capacity (grows to 2× the live-block count).
const MIN_CAPACITY: u32 = 4096;

impl Default for StackDistanceProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl StackDistanceProfiler {
    /// A fresh profiler with no history.
    pub fn new() -> Self {
        StackDistanceProfiler {
            last: LastAccessMap::default(),
            fenwick: Fenwick::new(MIN_CAPACITY as usize),
            next_pos: 0,
            live: 0,
        }
    }

    /// Distinct blocks seen so far.
    pub fn distinct_blocks(&self) -> u64 {
        self.live
    }

    /// Record one access to `block`; returns its stack distance, or `None`
    /// for a first touch.
    #[inline]
    pub fn access(&mut self, block: u64) -> Option<u64> {
        if self.next_pos as usize >= self.fenwick.tree.len() - 1 {
            self.compact();
        }
        let pos = self.next_pos;
        self.next_pos += 1;
        match self.last.insert(block, pos) {
            Some(prev) => {
                // Distance = live blocks last accessed strictly after `prev`.
                let distance = self.live - self.fenwick.prefix(prev);
                self.fenwick.add(prev, -1);
                self.fenwick.add(pos, 1);
                Some(distance)
            }
            None => {
                self.live += 1;
                self.fenwick.add(pos, 1);
                None
            }
        }
    }

    /// Renumber the position space to the live blocks (amortised `O(m log m)`
    /// every `O(m)` accesses, so `O(log m)` per access).
    fn compact(&mut self) {
        let mut entries: Vec<(u64, u32)> = self.last.drain().collect();
        // Preserve recency order: sort by old position.
        entries.sort_unstable_by_key(|&(_, pos)| pos);
        let capacity = (entries.len() as u32 * 2).max(MIN_CAPACITY);
        self.fenwick = Fenwick::new(capacity as usize);
        for (new_pos, (block, _)) in entries.into_iter().enumerate() {
            self.last.insert(block, new_pos as u32);
            self.fenwick.add(new_pos as u32, 1);
        }
        self.next_pos = self.live as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: an explicit LRU stack.
    fn naive_distances(stream: &[u64]) -> Vec<Option<u64>> {
        let mut stack: Vec<u64> = Vec::new();
        stream
            .iter()
            .map(|&b| {
                let d = stack.iter().rev().position(|&x| x == b).map(|d| d as u64);
                if let Some(i) = stack.iter().position(|&x| x == b) {
                    stack.remove(i);
                }
                stack.push(b);
                d
            })
            .collect()
    }

    #[test]
    fn distances_match_the_naive_lru_stack() {
        let stream = [1u64, 2, 3, 1, 2, 3, 4, 4, 1, 5, 3, 2, 1];
        let expected = naive_distances(&stream);
        let mut p = StackDistanceProfiler::new();
        let got: Vec<Option<u64>> = stream.iter().map(|&b| p.access(b)).collect();
        assert_eq!(got, expected);
        assert_eq!(p.distinct_blocks(), 5);
    }

    #[test]
    fn distances_survive_compaction() {
        // Force many compactions with a stream much longer than MIN_CAPACITY
        // over a small block set, checked against the naive stack.
        let stream: Vec<u64> = (0..3 * MIN_CAPACITY as u64)
            .map(|i| (i * 7 + (i / 13)) % 97)
            .collect();
        let expected = naive_distances(&stream);
        let mut p = StackDistanceProfiler::new();
        for (i, &b) in stream.iter().enumerate() {
            assert_eq!(p.access(b), expected[i], "access {i}");
        }
    }

    #[test]
    fn histogram_counts_below_capacity() {
        let mut h = DistanceHistogram::new();
        for d in [0u64, 1, 2, 5, 100, 300, 5000] {
            h.record(d);
        }
        h.record_cold();
        assert_eq!(h.total(), 8);
        assert_eq!(h.cold(), 1);
        assert_eq!(h.count_below(1), 1); // only d=0
        assert_eq!(h.count_below(3), 3); // 0,1,2
        assert_eq!(h.count_below(101), 5); // + 5, 100
        assert_eq!(h.count_below(1 << 20), 7); // all finite distances
        assert_eq!(h.count_below(0), 0);
    }

    #[test]
    fn histogram_boundary_interpolation_is_monotone() {
        let mut h = DistanceHistogram::new();
        for _ in 0..1000 {
            h.record(700); // one log-scaled bucket
        }
        let mut prev = 0;
        for cap in (0..2048).step_by(32) {
            let c = h.count_below(cap);
            assert!(c >= prev, "count_below must be monotone");
            prev = c;
        }
        assert_eq!(h.count_below(2048), 1000);
        assert_eq!(h.count_below(512), 0);
    }

    #[test]
    fn log_buckets_partition_the_distance_space() {
        // Every distance maps to exactly one bucket whose [lo, hi) range
        // contains it, and bucket edges are contiguous.
        for d in (0..100_000u64).step_by(37).chain([1 << 30, 1 << 40]) {
            let b = bucket_of(d);
            assert!(bucket_lo(b) <= d && d < bucket_hi(b), "d={d} bucket={b}");
        }
        for b in 0..(EXACT_BUCKETS as usize + 5 * LOG_SUB_BUCKETS as usize) {
            assert_eq!(bucket_hi(b), bucket_lo(b + 1), "bucket {b} edges");
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DistanceHistogram::new();
        a.record(3);
        a.record_cold();
        let mut b = DistanceHistogram::new();
        b.record(3);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count_below(4), 2);
    }
}
