//! Cache energy model and segment power-down.
//!
//! The paper notes two power-related benefits of PDF's smaller aggregate working
//! set: (1) reduced off-chip traffic directly reduces DRAM-interface energy, and
//! (2) segments of the shared L2 can be powered down (saving leakage) without
//! increasing the running time, because the working set fits in the remaining
//! segments.  This module provides the simple energy accounting used by the
//! `power_and_multiprogramming` experiment; capacity effects of powering segments
//! down are modelled by shrinking the configured L2
//! (see `pdfws_cmp_model::sweep::sweep_l2_fraction`).

use crate::stats::HierarchyStats;
use pdfws_cmp_model::CmpConfig;
use serde::{Deserialize, Serialize};

/// Energy coefficients, in picojoules, for the structures the study cares about.
/// Values are in the range reported by CACTI-class models for 90-32 nm SRAM and
/// DDR2/DDR3-era memory interfaces; only their relative magnitude matters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy per L1 access (pJ).
    pub l1_access_pj: f64,
    /// Dynamic energy per L2 access (pJ).
    pub l2_access_pj: f64,
    /// Energy per byte moved across the off-chip interface (pJ/byte).
    pub offchip_pj_per_byte: f64,
    /// Leakage power of the L2 per MiB, expressed in pJ per cycle per MiB.
    pub l2_leakage_pj_per_cycle_per_mib: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1_access_pj: 20.0,
            l2_access_pj: 300.0,
            offchip_pj_per_byte: 600.0,
            l2_leakage_pj_per_cycle_per_mib: 1.5,
        }
    }
}

/// Breakdown of the energy consumed by one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic L1 energy (pJ).
    pub l1_dynamic_pj: f64,
    /// Dynamic L2 energy (pJ).
    pub l2_dynamic_pj: f64,
    /// Off-chip interface energy (pJ).
    pub offchip_pj: f64,
    /// L2 leakage energy (pJ), proportional to the *powered* capacity and runtime.
    pub l2_leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.l1_dynamic_pj + self.l2_dynamic_pj + self.offchip_pj + self.l2_leakage_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1.0e9
    }
}

/// Estimate the energy of a run from its cache statistics.
///
/// * `stats` — hierarchy statistics at the end of the run.
/// * `config` — the machine configuration (for the *configured* L2 capacity).
/// * `cycles` — the run's makespan in cycles.
/// * `powered_l2_fraction` — fraction of the L2 left powered on (1.0 = all of it).
///   Only leakage depends on this; the capacity effect is simulated separately by
///   running with a proportionally smaller L2.
pub fn estimate_energy(
    stats: &HierarchyStats,
    config: &CmpConfig,
    cycles: u64,
    powered_l2_fraction: f64,
    model: &EnergyModel,
) -> EnergyBreakdown {
    assert!(
        (0.0..=1.0).contains(&powered_l2_fraction),
        "powered fraction must be in [0, 1]"
    );
    let l1_accesses = stats.l1_total().accesses() as f64;
    let l2_accesses = stats.l2.accesses() as f64;
    let l2_mib = config.l2.capacity_bytes as f64 / (1024.0 * 1024.0);
    EnergyBreakdown {
        l1_dynamic_pj: l1_accesses * model.l1_access_pj,
        l2_dynamic_pj: l2_accesses * model.l2_access_pj,
        offchip_pj: stats.offchip_bytes as f64 * model.offchip_pj_per_byte,
        l2_leakage_pj: cycles as f64
            * l2_mib
            * powered_l2_fraction
            * model.l2_leakage_pj_per_cycle_per_mib,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CacheStats;
    use pdfws_cmp_model::default_config;

    fn stats_with(l1_acc: u64, l2_acc: u64, offchip: u64) -> HierarchyStats {
        let mut s = HierarchyStats::new(1);
        s.l1[0] = CacheStats {
            read_hits: l1_acc,
            ..Default::default()
        };
        s.l2 = CacheStats {
            read_hits: l2_acc,
            ..Default::default()
        };
        s.offchip_bytes = offchip;
        s
    }

    #[test]
    fn energy_components_add_up() {
        let cfg = default_config(4).unwrap();
        let stats = stats_with(1000, 100, 6400);
        let e = estimate_energy(&stats, &cfg, 1_000_000, 1.0, &EnergyModel::default());
        let total = e.l1_dynamic_pj + e.l2_dynamic_pj + e.offchip_pj + e.l2_leakage_pj;
        assert!((e.total_pj() - total).abs() < 1e-6);
        assert!(e.total_mj() > 0.0);
    }

    #[test]
    fn less_offchip_traffic_means_less_energy() {
        let cfg = default_config(8).unwrap();
        let lo = estimate_energy(
            &stats_with(1000, 100, 64_000),
            &cfg,
            1_000_000,
            1.0,
            &EnergyModel::default(),
        );
        let hi = estimate_energy(
            &stats_with(1000, 100, 640_000),
            &cfg,
            1_000_000,
            1.0,
            &EnergyModel::default(),
        );
        assert!(hi.total_pj() > lo.total_pj());
        assert!(hi.offchip_pj > 9.0 * lo.offchip_pj);
    }

    #[test]
    fn powering_down_segments_cuts_leakage_proportionally() {
        let cfg = default_config(8).unwrap();
        let stats = stats_with(1000, 100, 0);
        let full = estimate_energy(&stats, &cfg, 1_000_000, 1.0, &EnergyModel::default());
        let half = estimate_energy(&stats, &cfg, 1_000_000, 0.5, &EnergyModel::default());
        assert!((half.l2_leakage_pj - full.l2_leakage_pj / 2.0).abs() < 1e-6);
        assert_eq!(half.l1_dynamic_pj, full.l1_dynamic_pj);
    }

    #[test]
    fn leakage_scales_with_runtime() {
        let cfg = default_config(2).unwrap();
        let stats = stats_with(0, 0, 0);
        let short = estimate_energy(&stats, &cfg, 1_000, 1.0, &EnergyModel::default());
        let long = estimate_energy(&stats, &cfg, 2_000, 1.0, &EnergyModel::default());
        assert!((long.l2_leakage_pj - 2.0 * short.l2_leakage_pj).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "powered fraction")]
    fn invalid_powered_fraction_panics() {
        let cfg = default_config(2).unwrap();
        let stats = HierarchyStats::new(1);
        estimate_energy(&stats, &cfg, 100, 1.5, &EnergyModel::default());
    }
}
