//! Address and cache-block arithmetic.
//!
//! The simulated programs live in a single flat byte-addressed address space.
//! Caches operate on aligned blocks (lines); these helpers convert between the
//! two and expand byte ranges into the blocks they touch.

/// A byte address in the simulated program's address space.
pub type Addr = u64;

/// A cache-block (line) number: the byte address divided by the line size.
pub type BlockAddr = u64;

/// The block containing byte address `addr` for `line_bytes`-byte lines.
///
/// `line_bytes` must be a power of two (guaranteed by
/// [`pdfws_cmp_model::CacheGeometry::validate`]).
#[inline]
pub fn block_of(addr: Addr, line_bytes: usize) -> BlockAddr {
    debug_assert!(line_bytes.is_power_of_two());
    addr >> line_bytes.trailing_zeros()
}

/// First byte address of a block.
#[inline]
pub fn block_base(block: BlockAddr, line_bytes: usize) -> Addr {
    debug_assert!(line_bytes.is_power_of_two());
    block << line_bytes.trailing_zeros()
}

/// Iterate over every block touched by the byte range `[start, start + len)`.
///
/// An empty range yields no blocks.
pub fn blocks_in_range(
    start: Addr,
    len: u64,
    line_bytes: usize,
) -> impl Iterator<Item = BlockAddr> {
    let (first, last) = if len == 0 {
        (1, 0) // empty iterator
    } else {
        (
            block_of(start, line_bytes),
            block_of(start + len - 1, line_bytes),
        )
    };
    first..=last
}

/// Number of distinct blocks touched by the byte range `[start, start + len)`.
pub fn block_count_in_range(start: Addr, len: u64, line_bytes: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    block_of(start + len - 1, line_bytes) - block_of(start, line_bytes) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_is_floor_division() {
        assert_eq!(block_of(0, 64), 0);
        assert_eq!(block_of(63, 64), 0);
        assert_eq!(block_of(64, 64), 1);
        assert_eq!(block_of(6400, 64), 100);
    }

    #[test]
    fn block_base_round_trips() {
        for addr in [0u64, 1, 63, 64, 65, 4096, 123_456_789] {
            let b = block_of(addr, 64);
            let base = block_base(b, 64);
            assert!(base <= addr && addr < base + 64);
        }
    }

    #[test]
    fn blocks_in_range_covers_boundaries() {
        let blocks: Vec<_> = blocks_in_range(60, 10, 64).collect();
        assert_eq!(blocks, vec![0, 1]);
        let blocks: Vec<_> = blocks_in_range(0, 64, 64).collect();
        assert_eq!(blocks, vec![0]);
        let blocks: Vec<_> = blocks_in_range(0, 65, 64).collect();
        assert_eq!(blocks, vec![0, 1]);
    }

    #[test]
    fn empty_range_has_no_blocks() {
        assert_eq!(blocks_in_range(100, 0, 64).count(), 0);
        assert_eq!(block_count_in_range(100, 0, 64), 0);
    }

    #[test]
    fn block_count_matches_iterator() {
        for (start, len) in [(0u64, 1u64), (63, 2), (10, 1000), (4090, 10), (0, 64 * 17)] {
            assert_eq!(
                block_count_in_range(start, len, 64),
                blocks_in_range(start, len, 64).count() as u64,
                "start={start} len={len}"
            );
        }
    }

    #[test]
    fn different_line_sizes() {
        assert_eq!(block_of(255, 32), 7);
        assert_eq!(block_of(255, 128), 1);
        assert_eq!(block_count_in_range(0, 256, 32), 8);
        assert_eq!(block_count_in_range(0, 256, 128), 2);
    }
}
