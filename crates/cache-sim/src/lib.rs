//! Trace-driven CMP cache-hierarchy simulator.
//!
//! The paper's evaluation platform is a simulated chip multiprocessor with
//! *fixed-size private L1 caches* and a *shared L2 cache* on chip; every reported
//! metric (L2 misses per 1000 instructions, off-chip traffic, speedup) is a
//! function of how the schedulers interleave the program's memory references on
//! that hierarchy.  This crate provides that hierarchy:
//!
//! * [`cache::Cache`] — one set-associative cache level with pluggable replacement
//!   ([`replacement::ReplacementPolicy`]), write-back/write-allocate behaviour and
//!   full hit/miss/eviction statistics.
//! * [`hierarchy::CmpCacheHierarchy`] — per-core private L1s in front of one shared,
//!   inclusive L2 with a directory of L1 sharers, MSI-style invalidations and
//!   back-invalidation on L2 eviction.
//! * [`power::estimate_energy`] / [`power::EnergyModel`] — the leakage/dynamic
//!   energy model behind the paper's "PDF's smaller working sets provide
//!   opportunities to power down segments of the cache" finding (the powered
//!   L2 fractions themselves come from `pdfws_cmp_model::sweep::sweep_l2_fraction`).
//! * [`working_set::WorkingSetProfiler`] — distinct-blocks-in-window profiling used
//!   to compare aggregate working sets under the two schedulers.
//! * [`mode::CacheModeSpec`] — the string-addressable *cache mode* axis
//!   (`exact`, `sampled:rate=N`, `analytic`) selecting how the engine prices
//!   memory references: full trace-driven simulation, systematic set-sampling
//!   with scaled-up statistics, or analytic composition of per-task
//!   reuse-distance histograms.
//! * [`stack_distance::StackDistanceProfiler`] — the one-pass LRU
//!   stack-distance profiler behind `cache=analytic`.
//!
//! The simulator is deterministic, single-threaded, and driven one access at a
//! time by the execution engine in `pdfws-schedulers`.
//!
//! # Example
//!
//! ```
//! use pdfws_cache_sim::hierarchy::CmpCacheHierarchy;
//! use pdfws_cmp_model::default_config;
//!
//! let cfg = default_config(4).unwrap();
//! let mut hier = CmpCacheHierarchy::new(&cfg);
//! // Core 0 touches a block: cold miss all the way to memory.
//! let first = hier.access(0, 0x1000, false);
//! assert!(first.is_offchip());
//! // Core 1 touches the same block: it is now in the shared L2.
//! let second = hier.access(1, 0x1000, false);
//! assert!(second.hit_in_l2());
//! ```

pub mod addr;
pub mod cache;
pub mod hierarchy;
pub mod mode;
pub mod power;
pub mod replacement;
pub mod stack_distance;
pub mod stats;
pub mod working_set;

pub use addr::{block_of, Addr, BlockAddr};
pub use cache::{AccessKind, Cache, CacheAccessResult};
pub use hierarchy::{AccessOutcome, CmpCacheHierarchy, Level};
pub use mode::{
    CacheModeError, CacheModeFactory, CacheModeRegistry, CacheModeSpec, MPKI_SLACK_ABS,
    MPKI_TOLERANCE_ANALYTIC, MPKI_TOLERANCE_SAMPLED,
};
pub use replacement::ReplacementPolicy;
pub use stack_distance::{DistanceHistogram, StackDistanceProfiler};
pub use stats::{CacheStats, HierarchyStats};
