//! Parameter sweeps over CMP configurations.
//!
//! The headline figure sweeps core count at the default configuration, but the
//! study's other findings need controlled variations: shrinking the effective L2
//! (cache power-down), varying off-chip bandwidth (to show when programs stop
//! being bandwidth-bound), and fixing the process node while varying cores.

use crate::area::AreaModel;
use crate::config::{config_for, default_config, CmpConfig};
use crate::error::ModelError;
use crate::latency;
use crate::tech::ProcessNode;

/// Sweep core counts at each count's default process node (the Figure 1 x-axis).
pub fn sweep_default_cores(core_counts: &[usize]) -> Result<Vec<CmpConfig>, ModelError> {
    core_counts.iter().map(|&c| default_config(c)).collect()
}

/// Sweep core counts at a *fixed* process node (isolates the area trade-off from
/// technology scaling).
pub fn sweep_cores_at_node(
    core_counts: &[usize],
    node: ProcessNode,
) -> Result<Vec<CmpConfig>, ModelError> {
    let area = AreaModel::default();
    core_counts
        .iter()
        .map(|&c| config_for(c, node, &area))
        .collect()
}

/// Produce variants of `base` whose shared L2 is scaled by each factor in
/// `fractions` (e.g. `[1.0, 0.75, 0.5, 0.25]`), modelling powering down segments
/// of the cache.  The L2 latency is kept at the full-size value: a powered-down
/// segment saves leakage, it does not make the remaining banks closer.
pub fn sweep_l2_fraction(
    base: &CmpConfig,
    fractions: &[f64],
) -> Result<Vec<CmpConfig>, ModelError> {
    fractions
        .iter()
        .map(|&f| {
            if !(0.0..=1.0).contains(&f) || f == 0.0 {
                return Err(ModelError::InvalidSweepParameter {
                    reason: format!("L2 fraction {f} outside (0, 1]"),
                });
            }
            let mut cfg = *base;
            let set_bytes = cfg.l2.line_bytes * cfg.l2.associativity;
            let target = (cfg.l2.capacity_bytes as f64 * f) as usize;
            let sets = (target / set_bytes).max(1);
            let sets_p2 = if sets.is_power_of_two() {
                sets
            } else {
                sets.next_power_of_two() / 2
            }
            .max(1);
            cfg.l2.capacity_bytes = sets_p2 * set_bytes;
            cfg.validate()?;
            Ok(cfg)
        })
        .collect()
}

/// Produce variants of `base` with the off-chip bandwidth scaled by each factor in
/// `factors` (e.g. `[0.5, 1.0, 2.0, 4.0]`).
pub fn sweep_bandwidth(base: &CmpConfig, factors: &[f64]) -> Result<Vec<CmpConfig>, ModelError> {
    factors
        .iter()
        .map(|&f| {
            if f <= 0.0 {
                return Err(ModelError::InvalidSweepParameter {
                    reason: format!("bandwidth factor {f} must be positive"),
                });
            }
            let mut cfg = *base;
            cfg.offchip_bytes_per_cycle *= f;
            cfg.validate()?;
            Ok(cfg)
        })
        .collect()
}

/// Produce a variant of `base` with an explicit L2 capacity (bytes), re-deriving
/// the L2 latency for the new size.
pub fn with_l2_capacity(base: &CmpConfig, capacity_bytes: usize) -> Result<CmpConfig, ModelError> {
    let mut cfg = *base;
    cfg.l2.capacity_bytes = capacity_bytes;
    cfg.l2.latency_cycles = latency::l2_latency_cycles(capacity_bytes, cfg.node);
    cfg.l2.validate()?;
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::default_core_counts;

    #[test]
    fn default_core_sweep_matches_individual_configs() {
        let counts = default_core_counts();
        let sweep = sweep_default_cores(&counts).unwrap();
        assert_eq!(sweep.len(), counts.len());
        for (cfg, &c) in sweep.iter().zip(&counts) {
            assert_eq!(cfg.cores, c);
            assert_eq!(*cfg, default_config(c).unwrap());
        }
    }

    #[test]
    fn fixed_node_sweep_holds_node_constant() {
        let sweep = sweep_cores_at_node(&[1, 2, 4, 8], ProcessNode::Nm32).unwrap();
        for cfg in &sweep {
            assert_eq!(cfg.node, ProcessNode::Nm32);
        }
        // Monotone L2 shrink holds within a node, too.
        for w in sweep.windows(2) {
            assert!(w[1].l2.capacity_bytes <= w[0].l2.capacity_bytes);
        }
    }

    #[test]
    fn l2_fraction_sweep_shrinks_capacity_monotonically() {
        let base = default_config(8).unwrap();
        let sweep = sweep_l2_fraction(&base, &[1.0, 0.5, 0.25]).unwrap();
        assert_eq!(sweep[0].l2.capacity_bytes, base.l2.capacity_bytes);
        assert!(
            sweep[1].l2.capacity_bytes <= base.l2.capacity_bytes / 2 + base.l2.capacity_bytes / 8
        );
        assert!(sweep[2].l2.capacity_bytes < sweep[1].l2.capacity_bytes);
        for cfg in &sweep {
            cfg.validate().unwrap();
            assert_eq!(
                cfg.l2.latency_cycles, base.l2.latency_cycles,
                "power-down keeps latency"
            );
        }
    }

    #[test]
    fn l2_fraction_rejects_zero_and_above_one() {
        let base = default_config(4).unwrap();
        assert!(sweep_l2_fraction(&base, &[0.0]).is_err());
        assert!(sweep_l2_fraction(&base, &[1.5]).is_err());
    }

    #[test]
    fn bandwidth_sweep_scales_bandwidth() {
        let base = default_config(16).unwrap();
        let sweep = sweep_bandwidth(&base, &[0.5, 1.0, 2.0]).unwrap();
        assert!(
            (sweep[0].offchip_bytes_per_cycle - base.offchip_bytes_per_cycle * 0.5).abs() < 1e-9
        );
        assert!(
            (sweep[2].offchip_bytes_per_cycle - base.offchip_bytes_per_cycle * 2.0).abs() < 1e-9
        );
        assert!(sweep_bandwidth(&base, &[0.0]).is_err());
        assert!(sweep_bandwidth(&base, &[-1.0]).is_err());
    }

    #[test]
    fn with_l2_capacity_rederives_latency() {
        let base = default_config(8).unwrap();
        let small = with_l2_capacity(&base, 1024 * 1024).unwrap();
        assert_eq!(small.l2.capacity_bytes, 1024 * 1024);
        assert!(small.l2.latency_cycles <= base.l2.latency_cycles);
        // Invalid capacity (not a power-of-two set count) is rejected.
        assert!(with_l2_capacity(&base, 3 * 1024 * 1024 + 64).is_err());
    }
}
