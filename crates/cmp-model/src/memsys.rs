//! Memory-system parameters: which off-chip model a configuration uses and
//! how its shared bus and DRAM controller are sized.
//!
//! A [`CmpConfig`](crate::CmpConfig) carries a [`MemSysParams`] alongside the
//! cache geometry.  The parameters are *overrides*: every field defaults to
//! `None`, meaning "derive from the configuration" — the bus width from the
//! node's off-chip bandwidth, the DRAM latencies from the node's unloaded
//! memory latency — so tweaking `offchip_bytes_per_cycle` on a config still
//! moves the modelled bus.  [`MemSysParams::resolve`] turns the overrides into
//! a fully concrete [`ResolvedMemSys`] the execution engine (via
//! `pdfws-memsys`) instantiates.
//!
//! The string grammar (`bus:width=...,dram:banks=...`) and the component
//! implementations live in the `pdfws-memsys` crate; this module is only the
//! plain-old-data half that a `Copy + Serialize` config can embed.

use serde::{Deserialize, Serialize};

/// Which off-chip model the execution engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemSysMode {
    /// The component model: every L2 miss traverses a shared split-transaction
    /// bus and a banked DRAM controller; queuing delays are emergent.
    #[default]
    BusDram,
    /// The pre-component model: a single serialising off-chip channel whose
    /// per-miss cost is a closed-form function of bytes and bandwidth.
    Legacy,
}

/// Overrides for the memory-system model carried by a configuration.
///
/// `None` means "derive the value from the configuration" — see
/// [`MemSysParams::resolve`] for the derivation rules.  The struct stays
/// `Copy`/`Serialize` so it can live inside [`CmpConfig`](crate::CmpConfig).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemSysParams {
    /// Which model runs (default: [`MemSysMode::BusDram`]).
    pub mode: MemSysMode,
    /// Bus width in bytes per bus cycle (default: the config's
    /// `offchip_bytes_per_cycle`, so the bus *is* the off-chip pin budget).
    pub bus_bytes_per_cycle: Option<f64>,
    /// Core cycles per bus cycle (default 1; >1 models a slower bus clock —
    /// grants align to multiples of this period).
    pub bus_clock_period: Option<u64>,
    /// DRAM data bandwidth in bytes per core cycle (default: twice the bus
    /// width, so the controller is not the first bottleneck).
    pub dram_bytes_per_cycle: Option<f64>,
    /// Number of independently busy DRAM banks (default
    /// [`DEFAULT_DRAM_BANKS`]).
    pub dram_banks: Option<u64>,
    /// Open-row hit latency in core cycles (default: a quarter of the derived
    /// row-miss latency).
    pub dram_hit_cycles: Option<u64>,
    /// Row-miss (activate + access) latency in core cycles (default: the
    /// config's unloaded `memory_latency_cycles` minus the two line-transfer
    /// times, so an unloaded row miss round-trips in exactly the latency the
    /// legacy model charged).
    pub dram_miss_cycles: Option<u64>,
}

/// Default number of DRAM banks when no override is given: a channel with
/// two dual-rank DIMMs (4 ranks x 8 device banks), modelled as 16 banks that
/// each keep two rows open (`pdfws-memsys` pairs the ranks' row buffers).
pub const DEFAULT_DRAM_BANKS: u64 = 16;

impl MemSysParams {
    /// The component model with every value derived from the configuration.
    pub fn bus_dram() -> Self {
        MemSysParams::default()
    }

    /// The legacy serialising-channel model.
    pub fn legacy() -> Self {
        MemSysParams {
            mode: MemSysMode::Legacy,
            ..MemSysParams::default()
        }
    }

    /// Resolve the overrides against a configuration's channel parameters
    /// into concrete component sizes.
    ///
    /// * bus width ← `offchip_bytes_per_cycle`;
    /// * DRAM bandwidth ← 2 × bus width;
    /// * banks ← [`DEFAULT_DRAM_BANKS`];
    /// * row-miss latency ← `memory_latency_cycles` − line transfer on the bus
    ///   − line transfer in DRAM (clamped to ≥ 1), calibrated so an unloaded
    ///   row-missing line fill costs exactly `memory_latency_cycles`;
    /// * row-hit latency ← max(miss / 4, 1).
    pub fn resolve(
        &self,
        offchip_bytes_per_cycle: f64,
        memory_latency_cycles: u64,
        line_bytes: usize,
    ) -> ResolvedMemSys {
        let bus_bytes_per_cycle = self.bus_bytes_per_cycle.unwrap_or(offchip_bytes_per_cycle);
        let bus_clock_period = self.bus_clock_period.unwrap_or(1).max(1);
        let dram_bytes_per_cycle = self
            .dram_bytes_per_cycle
            .unwrap_or(2.0 * bus_bytes_per_cycle);
        let dram_banks = self.dram_banks.unwrap_or(DEFAULT_DRAM_BANKS).max(1);
        let bus_line = transfer_cycles(line_bytes as u64, bus_bytes_per_cycle);
        let dram_line = transfer_cycles(line_bytes as u64, dram_bytes_per_cycle);
        let dram_miss_cycles = self.dram_miss_cycles.unwrap_or_else(|| {
            memory_latency_cycles
                .saturating_sub(bus_line + dram_line)
                .max(1)
        });
        let dram_hit_cycles = self
            .dram_hit_cycles
            .unwrap_or_else(|| (dram_miss_cycles / 4).max(1));
        ResolvedMemSys {
            mode: self.mode,
            bus_bytes_per_cycle,
            bus_clock_period,
            dram_bytes_per_cycle,
            dram_banks,
            dram_hit_cycles,
            dram_miss_cycles,
            line_bytes: line_bytes as u64,
        }
    }

    /// Validate the overrides that are present.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(w) = self.bus_bytes_per_cycle {
            if w.is_nan() || w <= 0.0 {
                return Err("memsys bus width must be positive".to_string());
            }
        }
        if let Some(bw) = self.dram_bytes_per_cycle {
            if bw.is_nan() || bw <= 0.0 {
                return Err("memsys DRAM bandwidth must be positive".to_string());
            }
        }
        if self.bus_clock_period == Some(0) {
            return Err("memsys bus clock period must be positive".to_string());
        }
        if self.dram_banks == Some(0) {
            return Err("memsys DRAM bank count must be positive".to_string());
        }
        if self.dram_miss_cycles == Some(0) {
            return Err("memsys DRAM row-miss latency must be positive".to_string());
        }
        Ok(())
    }
}

/// Cycles to move `bytes` at `bytes_per_cycle` (0 for an unbounded resource).
pub fn transfer_cycles(bytes: u64, bytes_per_cycle: f64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let cycles = (bytes as f64 / bytes_per_cycle).ceil();
    if cycles.is_finite() {
        cycles as u64
    } else {
        0
    }
}

/// Fully concrete memory-system sizing, produced by [`MemSysParams::resolve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedMemSys {
    /// Which model runs.
    pub mode: MemSysMode,
    /// Bus width in bytes per bus cycle.
    pub bus_bytes_per_cycle: f64,
    /// Core cycles per bus cycle.
    pub bus_clock_period: u64,
    /// DRAM data bandwidth in bytes per core cycle.
    pub dram_bytes_per_cycle: f64,
    /// Number of DRAM banks.
    pub dram_banks: u64,
    /// Open-row hit latency in core cycles.
    pub dram_hit_cycles: u64,
    /// Row-miss latency in core cycles.
    pub dram_miss_cycles: u64,
    /// Cache line size in bytes (the fill granularity).
    pub line_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_BYTES;

    #[test]
    fn defaults_derive_from_the_channel() {
        let r = MemSysParams::bus_dram().resolve(8.0 / 3.0, 240, LINE_BYTES);
        assert_eq!(r.mode, MemSysMode::BusDram);
        assert!((r.bus_bytes_per_cycle - 8.0 / 3.0).abs() < 1e-12);
        assert!((r.dram_bytes_per_cycle - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.dram_banks, DEFAULT_DRAM_BANKS);
        // line transfers: ceil(64 / 2.67) = 24 on the bus, 12 in DRAM.
        let bus_line = transfer_cycles(64, 8.0 / 3.0);
        let dram_line = transfer_cycles(64, 16.0 / 3.0);
        assert_eq!(r.dram_miss_cycles, 240 - bus_line - dram_line);
        assert_eq!(r.dram_hit_cycles, r.dram_miss_cycles / 4);
        // Calibration: unloaded row-missing line fill costs the legacy latency.
        assert_eq!(bus_line + r.dram_miss_cycles + dram_line, 240);
    }

    #[test]
    fn overrides_win_over_derivation() {
        let params = MemSysParams {
            bus_bytes_per_cycle: Some(4.0),
            dram_banks: Some(2),
            dram_miss_cycles: Some(100),
            ..MemSysParams::bus_dram()
        };
        let r = params.resolve(8.0, 240, LINE_BYTES);
        assert_eq!(r.bus_bytes_per_cycle, 4.0);
        assert_eq!(r.dram_bytes_per_cycle, 8.0); // 2x the *overridden* width
        assert_eq!(r.dram_banks, 2);
        assert_eq!(r.dram_miss_cycles, 100);
        assert_eq!(r.dram_hit_cycles, 25);
    }

    #[test]
    fn infinite_width_means_zero_cycle_transfers() {
        assert_eq!(transfer_cycles(64, f64::INFINITY), 0);
        assert_eq!(transfer_cycles(0, 2.0), 0);
        assert_eq!(transfer_cycles(64, 0.5), 128);
    }

    #[test]
    fn tiny_latencies_stay_positive() {
        let r = MemSysParams::bus_dram().resolve(0.1, 10, LINE_BYTES);
        assert!(r.dram_miss_cycles >= 1);
        assert!(r.dram_hit_cycles >= 1);
    }

    #[test]
    fn validation_rejects_non_positive_overrides() {
        for bad in [
            MemSysParams {
                bus_bytes_per_cycle: Some(0.0),
                ..MemSysParams::bus_dram()
            },
            MemSysParams {
                dram_bytes_per_cycle: Some(-1.0),
                ..MemSysParams::bus_dram()
            },
            MemSysParams {
                bus_clock_period: Some(0),
                ..MemSysParams::bus_dram()
            },
            MemSysParams {
                dram_banks: Some(0),
                ..MemSysParams::bus_dram()
            },
            MemSysParams {
                dram_miss_cycles: Some(0),
                ..MemSysParams::bus_dram()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        MemSysParams::bus_dram().validate().unwrap();
        MemSysParams::legacy().validate().unwrap();
    }
}
