//! Die-area accounting: how much shared L2 fits next to N cores on 240 mm².
//!
//! The model is deliberately simple — the paper only needs it to pick plausible
//! default L2 capacities — but it enforces the two properties every conclusion
//! rests on: the die is a fixed budget, and area spent on cores is area not spent
//! on cache.

use crate::error::ModelError;
use crate::tech::ProcessNode;
use serde::{Deserialize, Serialize};

/// Fraction of the die reserved for everything that is neither a core nor the L2:
/// I/O pads, memory controller, interconnect, clocking.
pub const FIXED_OVERHEAD_FRACTION: f64 = 0.15;

/// Per-core private L1 capacity in bytes (instruction + data combined footprint
/// charged to the core).  The paper keeps the private L1s at a fixed size across
/// all configurations.
pub const L1_BYTES_PER_CORE: usize = 64 * 1024;

/// Granularity to which the derived L2 capacity is rounded (down), in bytes.
/// Real caches come in power-of-two-ish banks; 256 KiB keeps the numbers tidy.
pub const L2_QUANTUM_BYTES: usize = 256 * 1024;

/// Splits a fixed die budget between cores, private L1s, fixed overheads and the
/// shared L2 for a given process node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Total die area in mm².
    pub die_mm2: f64,
    /// Fraction of `die_mm2` consumed by non-core, non-L2 structures.
    pub fixed_overhead_fraction: f64,
    /// Private L1 capacity charged per core, in bytes.
    pub l1_bytes_per_core: usize,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            die_mm2: crate::DIE_AREA_MM2,
            fixed_overhead_fraction: FIXED_OVERHEAD_FRACTION,
            l1_bytes_per_core: L1_BYTES_PER_CORE,
        }
    }
}

/// The outcome of placing `cores` cores on the die at a given node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Number of cores placed.
    pub cores: usize,
    /// Process node used.
    pub node: ProcessNode,
    /// Area consumed by the cores themselves (mm²).
    pub core_mm2: f64,
    /// Area consumed by the private L1s (mm²).
    pub l1_mm2: f64,
    /// Area consumed by fixed overheads (mm²).
    pub overhead_mm2: f64,
    /// Area left over for the shared L2 (mm²).
    pub l2_mm2: f64,
    /// Shared-L2 capacity that fits in `l2_mm2`, rounded down to [`L2_QUANTUM_BYTES`].
    pub l2_capacity_bytes: usize,
}

impl AreaModel {
    /// Usable area after fixed overheads, in mm².
    pub fn usable_mm2(&self) -> f64 {
        self.die_mm2 * (1.0 - self.fixed_overhead_fraction)
    }

    /// Compute the area breakdown for `cores` cores at `node`.
    ///
    /// Returns [`ModelError::DieBudgetExceeded`] if the cores and their L1s do not
    /// leave at least one L2 quantum of cache on the die.
    pub fn breakdown(&self, cores: usize, node: ProcessNode) -> Result<AreaBreakdown, ModelError> {
        if cores == 0 {
            return Err(ModelError::UnsupportedCoreCount { requested: 0 });
        }
        let overhead_mm2 = self.die_mm2 * self.fixed_overhead_fraction;
        let core_mm2 = cores as f64 * node.core_area_mm2();
        let l1_mm2 = cores as f64 * self.l1_bytes_per_core as f64 / node.sram_bytes_per_mm2();
        let required = overhead_mm2 + core_mm2 + l1_mm2;
        let l2_mm2 = self.die_mm2 - required;
        let l2_capacity_raw = (l2_mm2.max(0.0) * node.sram_bytes_per_mm2()) as usize;
        let l2_capacity_bytes = (l2_capacity_raw / L2_QUANTUM_BYTES) * L2_QUANTUM_BYTES;
        if l2_capacity_bytes == 0 {
            return Err(ModelError::DieBudgetExceeded {
                cores,
                required_mm2: required,
                budget_mm2: self.die_mm2,
            });
        }
        Ok(AreaBreakdown {
            cores,
            node,
            core_mm2,
            l1_mm2,
            overhead_mm2,
            l2_mm2,
            l2_capacity_bytes,
        })
    }

    /// The largest number of cores that still leaves one L2 quantum on the die.
    pub fn max_cores(&self, node: ProcessNode) -> usize {
        let mut cores = 0;
        while self.breakdown(cores + 1, node).is_ok() {
            cores += 1;
            if cores > 4096 {
                break; // safety valve; never reached with realistic parameters
            }
        }
        cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_area_is_less_than_die() {
        let m = AreaModel::default();
        assert!(m.usable_mm2() < m.die_mm2);
        assert!(m.usable_mm2() > 0.0);
    }

    #[test]
    fn breakdown_components_sum_to_die() {
        let m = AreaModel::default();
        let b = m.breakdown(4, ProcessNode::Nm65).unwrap();
        let sum = b.core_mm2 + b.l1_mm2 + b.overhead_mm2 + b.l2_mm2;
        assert!((sum - m.die_mm2).abs() < 1e-9);
    }

    #[test]
    fn more_cores_means_less_l2_at_fixed_node() {
        let m = AreaModel::default();
        let mut prev = usize::MAX;
        for cores in [1usize, 2, 4, 8] {
            let b = m.breakdown(cores, ProcessNode::Nm32).unwrap();
            assert!(
                b.l2_capacity_bytes < prev,
                "L2 must shrink as cores grow at a fixed node"
            );
            prev = b.l2_capacity_bytes;
        }
    }

    #[test]
    fn newer_node_means_more_l2_at_fixed_cores() {
        let m = AreaModel::default();
        let old = m.breakdown(2, ProcessNode::Nm90).unwrap();
        let new = m.breakdown(2, ProcessNode::Nm32).unwrap();
        assert!(new.l2_capacity_bytes > old.l2_capacity_bytes);
    }

    #[test]
    fn l2_capacity_is_quantised() {
        let m = AreaModel::default();
        for cores in [1usize, 2, 4, 8, 16, 32] {
            if let Some(node) = ProcessNode::default_for_cores(cores) {
                let b = m.breakdown(cores, node).unwrap();
                assert_eq!(b.l2_capacity_bytes % L2_QUANTUM_BYTES, 0);
            }
        }
    }

    #[test]
    fn zero_cores_is_rejected() {
        let m = AreaModel::default();
        assert!(matches!(
            m.breakdown(0, ProcessNode::Nm90),
            Err(ModelError::UnsupportedCoreCount { requested: 0 })
        ));
    }

    #[test]
    fn too_many_cores_exceed_budget_at_90nm() {
        let m = AreaModel::default();
        // At 90 nm a core is ~20 mm²; 32 of them cannot fit on 240 mm².
        assert!(matches!(
            m.breakdown(32, ProcessNode::Nm90),
            Err(ModelError::DieBudgetExceeded { .. })
        ));
    }

    #[test]
    fn study_range_fits_on_default_nodes() {
        let m = AreaModel::default();
        for cores in 1..=32usize {
            let node = ProcessNode::default_for_cores(cores).unwrap();
            let b = m.breakdown(cores, node);
            assert!(b.is_ok(), "cores={cores} node={node:?}: {b:?}");
        }
    }

    #[test]
    fn max_cores_grows_with_node() {
        let m = AreaModel::default();
        assert!(m.max_cores(ProcessNode::Nm32) > m.max_cores(ProcessNode::Nm90));
        assert!(m.max_cores(ProcessNode::Nm32) >= 32);
    }

    #[test]
    fn one_core_leaves_multi_megabyte_l2_at_90nm() {
        let m = AreaModel::default();
        let b = m.breakdown(1, ProcessNode::Nm90).unwrap();
        assert!(
            b.l2_capacity_bytes >= 4 * 1024 * 1024,
            "expected several MiB of L2, got {}",
            b.l2_capacity_bytes
        );
    }
}
