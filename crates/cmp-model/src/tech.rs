//! Process-technology nodes and their scaling properties.
//!
//! The paper sweeps 1–32 cores and, for each core count, picks a default
//! configuration "based on current CMPs and realistic projections of future CMPs,
//! as process technologies decrease from 90 nm to 32 nm".  This module captures the
//! per-node quantities that the area and latency models need:
//!
//! * linear feature-size scaling (and therefore area scaling) relative to 90 nm,
//! * the area of one processing core,
//! * SRAM density (how many bytes of cache fit in a mm²),
//! * clock frequency, and
//! * sustained off-chip bandwidth.
//!
//! The off-chip-bandwidth numbers intentionally grow much more slowly than the
//! aggregate compute capability: that widening gap is the premise of the study.

use serde::{Deserialize, Serialize};

/// A silicon process technology node.
///
/// Ordering is chronological: `Nm90 < Nm65 < Nm45 < Nm32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    /// 90 nm — the "current CMP" node at the time of the study (2004-2006).
    Nm90,
    /// 65 nm — near-term projection.
    Nm65,
    /// 45 nm — medium-term projection.
    Nm45,
    /// 32 nm — the most aggressive projection used in the paper.
    Nm32,
}

impl ProcessNode {
    /// All nodes, oldest first.
    pub const ALL: [ProcessNode; 4] = [
        ProcessNode::Nm90,
        ProcessNode::Nm65,
        ProcessNode::Nm45,
        ProcessNode::Nm32,
    ];

    /// Feature size in nanometres.
    pub fn feature_nm(self) -> f64 {
        match self {
            ProcessNode::Nm90 => 90.0,
            ProcessNode::Nm65 => 65.0,
            ProcessNode::Nm45 => 45.0,
            ProcessNode::Nm32 => 32.0,
        }
    }

    /// Linear shrink factor relative to 90 nm (1.0 at 90 nm, < 1.0 afterwards).
    pub fn linear_scale(self) -> f64 {
        self.feature_nm() / 90.0
    }

    /// Area shrink factor relative to 90 nm (square of the linear shrink).
    pub fn area_scale(self) -> f64 {
        let s = self.linear_scale();
        s * s
    }

    /// Area of one processing core in mm².
    ///
    /// The study uses relatively simple cores (the point is many of them on one
    /// die); we model a core that occupies about 20 mm² at 90 nm — roughly the
    /// footprint of a mid-2000s out-of-order core without its L2 — and shrinks
    /// with the process node, with a mild (10 %) "cores do not shrink perfectly"
    /// penalty per generation.
    pub fn core_area_mm2(self) -> f64 {
        const CORE_AREA_90NM: f64 = 20.0;
        let generations = match self {
            ProcessNode::Nm90 => 0,
            ProcessNode::Nm65 => 1,
            ProcessNode::Nm45 => 2,
            ProcessNode::Nm32 => 3,
        };
        CORE_AREA_90NM * self.area_scale() * 1.10_f64.powi(generations)
    }

    /// SRAM density in bytes of cache per mm² (data + tags + periphery).
    ///
    /// Calibrated to about 1 MiB per 18 mm² at 90 nm, improving with the inverse
    /// of the area scale but derated by 15 % per generation for wire and
    /// redundancy overheads.
    pub fn sram_bytes_per_mm2(self) -> f64 {
        const BYTES_PER_MM2_90NM: f64 = (1 << 20) as f64 / 18.0;
        let generations = match self {
            ProcessNode::Nm90 => 0,
            ProcessNode::Nm65 => 1,
            ProcessNode::Nm45 => 2,
            ProcessNode::Nm32 => 3,
        };
        BYTES_PER_MM2_90NM / self.area_scale() * 0.85_f64.powi(generations)
    }

    /// Core clock frequency in GHz.
    ///
    /// Frequency scaling had already slowed by 2006; we model modest growth.
    pub fn frequency_ghz(self) -> f64 {
        match self {
            ProcessNode::Nm90 => 3.0,
            ProcessNode::Nm65 => 3.5,
            ProcessNode::Nm45 => 4.0,
            ProcessNode::Nm32 => 4.4,
        }
    }

    /// Sustained off-chip memory bandwidth in GB/s.
    ///
    /// Pin counts and signalling rates improve slowly; this is the resource the
    /// shared L2 is supposed to conserve.
    pub fn offchip_bandwidth_gbs(self) -> f64 {
        match self {
            ProcessNode::Nm90 => 8.0,
            ProcessNode::Nm65 => 12.0,
            ProcessNode::Nm45 => 18.0,
            ProcessNode::Nm32 => 26.0,
        }
    }

    /// Off-chip bandwidth expressed in bytes per core clock cycle.
    pub fn offchip_bytes_per_cycle(self) -> f64 {
        self.offchip_bandwidth_gbs() / self.frequency_ghz()
    }

    /// Main-memory access latency in core clock cycles (round trip, unloaded).
    ///
    /// DRAM latency in nanoseconds is roughly flat across nodes, so the latency in
    /// *cycles* grows with frequency.
    pub fn memory_latency_cycles(self) -> u64 {
        const DRAM_LATENCY_NS: f64 = 80.0;
        (DRAM_LATENCY_NS * self.frequency_ghz()).round() as u64
    }

    /// The default process node the study associates with a given core count.
    ///
    /// Small core counts correspond to chips shipping at the time (90/65 nm);
    /// large core counts are only feasible at the projected 45/32 nm nodes.
    pub fn default_for_cores(cores: usize) -> Option<ProcessNode> {
        match cores {
            1 | 2 => Some(ProcessNode::Nm90),
            3..=4 => Some(ProcessNode::Nm65),
            5..=8 => Some(ProcessNode::Nm45),
            9..=32 => Some(ProcessNode::Nm32),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_chronologically_ordered() {
        assert!(ProcessNode::Nm90 < ProcessNode::Nm65);
        assert!(ProcessNode::Nm65 < ProcessNode::Nm45);
        assert!(ProcessNode::Nm45 < ProcessNode::Nm32);
    }

    #[test]
    fn area_scale_is_one_at_90nm_and_decreases() {
        assert!((ProcessNode::Nm90.area_scale() - 1.0).abs() < 1e-12);
        let mut prev = f64::INFINITY;
        for node in ProcessNode::ALL {
            let a = node.area_scale();
            assert!(a <= prev, "area scale must shrink monotonically");
            prev = a;
        }
    }

    #[test]
    fn core_area_shrinks_with_node() {
        let mut prev = f64::INFINITY;
        for node in ProcessNode::ALL {
            let a = node.core_area_mm2();
            assert!(a < prev, "core area must shrink: {node:?} = {a}");
            assert!(a > 1.0, "a core should still be at least 1 mm²");
            prev = a;
        }
    }

    #[test]
    fn sram_density_improves_with_node() {
        let mut prev = 0.0;
        for node in ProcessNode::ALL {
            let d = node.sram_bytes_per_mm2();
            assert!(d > prev, "SRAM density must improve: {node:?} = {d}");
            prev = d;
        }
    }

    #[test]
    fn density_calibration_at_90nm() {
        // ~1 MiB in 18 mm².
        let mb_in_18mm2 = ProcessNode::Nm90.sram_bytes_per_mm2() * 18.0 / (1 << 20) as f64;
        assert!((mb_in_18mm2 - 1.0).abs() < 0.01);
    }

    #[test]
    fn frequency_and_bandwidth_grow_monotonically() {
        let mut prev_f = 0.0;
        let mut prev_b = 0.0;
        for node in ProcessNode::ALL {
            assert!(node.frequency_ghz() > prev_f);
            assert!(node.offchip_bandwidth_gbs() > prev_b);
            prev_f = node.frequency_ghz();
            prev_b = node.offchip_bandwidth_gbs();
        }
    }

    #[test]
    fn bandwidth_grows_slower_than_core_count_capability() {
        // From 90 nm to 32 nm, the number of cores that fit grows by ~8x or more,
        // but bandwidth grows by only ~3x.  This gap is the paper's premise.
        let bw_growth =
            ProcessNode::Nm32.offchip_bandwidth_gbs() / ProcessNode::Nm90.offchip_bandwidth_gbs();
        let core_shrink = ProcessNode::Nm90.core_area_mm2() / ProcessNode::Nm32.core_area_mm2();
        assert!(core_shrink > bw_growth);
    }

    #[test]
    fn memory_latency_grows_in_cycles() {
        assert!(
            ProcessNode::Nm32.memory_latency_cycles() > ProcessNode::Nm90.memory_latency_cycles()
        );
        assert!(ProcessNode::Nm90.memory_latency_cycles() >= 200);
    }

    #[test]
    fn default_node_mapping_covers_study_range() {
        for cores in 1..=32 {
            assert!(
                ProcessNode::default_for_cores(cores).is_some(),
                "cores={cores}"
            );
        }
        assert_eq!(ProcessNode::default_for_cores(0), None);
        assert_eq!(ProcessNode::default_for_cores(33), None);
        assert_eq!(ProcessNode::default_for_cores(1), Some(ProcessNode::Nm90));
        assert_eq!(ProcessNode::default_for_cores(4), Some(ProcessNode::Nm65));
        assert_eq!(ProcessNode::default_for_cores(8), Some(ProcessNode::Nm45));
        assert_eq!(ProcessNode::default_for_cores(32), Some(ProcessNode::Nm32));
    }

    #[test]
    fn default_node_mapping_is_monotone_in_cores() {
        let mut prev = ProcessNode::Nm90;
        for cores in 1..=32 {
            let node = ProcessNode::default_for_cores(cores).unwrap();
            assert!(node >= prev, "node must not regress as cores grow");
            prev = node;
        }
    }

    #[test]
    fn bytes_per_cycle_is_consistent() {
        for node in ProcessNode::ALL {
            let expected = node.offchip_bandwidth_gbs() / node.frequency_ghz();
            assert!((node.offchip_bytes_per_cycle() - expected).abs() < 1e-12);
        }
    }
}
