//! CMP configuration model for the PDF-vs-WS scheduler study.
//!
//! The SPAA'06 brief announcement evaluates both schedulers "across a range of
//! simulated CMP configurations", all derived from a single rule:
//!
//! * the die size is fixed at **240 mm²**,
//! * the chip has **1 to 32 cores**, each with a fixed-size private L1,
//! * the remaining die area is spent on a **shared L2**, and
//! * for each core count a *default configuration* is chosen "based on current
//!   CMPs and realistic projections of future CMPs, as process technologies
//!   decrease from 90 nm to 32 nm".
//!
//! This crate reproduces that rule as an analytic model: a [`tech::ProcessNode`]
//! fixes transistor density, SRAM density, frequency and off-chip bandwidth; an
//! [`area::AreaModel`] splits the 240 mm² budget between cores, L1s, interconnect
//! and the shared L2; and [`config::default_config`] combines the two into a
//! [`config::CmpConfig`] that the cache simulator and the execution engine consume.
//!
//! Absolute numbers are calibrated against publicly known 2004-2006 CMPs (e.g.
//! 1 MB of L2 occupying roughly 18 mm² at 90 nm, dual-core dies around 200-300 mm²)
//! but the *trends* are what the study depends on:
//!
//! * at a fixed process node, more cores ⇒ less shared L2;
//! * newer nodes ⇒ smaller cores and denser SRAM ⇒ larger L2 and more cores fit;
//! * off-chip bandwidth grows far more slowly than aggregate compute, which is the
//!   reason constructive cache sharing matters at all.
//!
//! # Example
//!
//! ```
//! use pdfws_cmp_model::config::{default_config, default_core_counts};
//!
//! for cores in default_core_counts() {
//!     let cfg = default_config(cores).unwrap();
//!     println!(
//!         "{:2} cores @ {:?}: L2 = {} KiB, off-chip = {:.1} bytes/cycle",
//!         cfg.cores,
//!         cfg.node,
//!         cfg.l2.capacity_bytes / 1024,
//!         cfg.offchip_bytes_per_cycle
//!     );
//! }
//! ```

pub mod area;
pub mod config;
pub mod error;
pub mod latency;
pub mod memsys;
pub mod sweep;
pub mod tech;

pub use area::AreaModel;
pub use config::{default_config, default_core_counts, default_sweep, CacheGeometry, CmpConfig};
pub use error::ModelError;
pub use memsys::{MemSysMode, MemSysParams, ResolvedMemSys};
pub use tech::ProcessNode;

/// Fixed die area used throughout the paper's evaluation, in mm².
pub const DIE_AREA_MM2: f64 = 240.0;

/// Cache line size (bytes) used by every configuration in the study.
pub const LINE_BYTES: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_area_matches_paper() {
        assert_eq!(DIE_AREA_MM2, 240.0);
    }

    #[test]
    fn line_size_is_power_of_two() {
        assert!(LINE_BYTES.is_power_of_two());
    }
}
