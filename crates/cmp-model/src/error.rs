//! Error type for configuration-model failures.

use std::fmt;

/// Errors produced while deriving or validating a CMP configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The requested core count is outside the range studied in the paper (1..=32)
    /// or otherwise impossible to place on the die.
    UnsupportedCoreCount {
        /// The core count that was requested.
        requested: usize,
    },
    /// The cores plus fixed overheads exceed the die budget, leaving no area for L2.
    DieBudgetExceeded {
        /// Core count that was being placed.
        cores: usize,
        /// Area (mm²) required before any L2 is allocated.
        required_mm2: f64,
        /// Total usable die area (mm²).
        budget_mm2: f64,
    },
    /// A cache geometry parameter is invalid (zero size, non-power-of-two line, ...).
    InvalidCacheGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A sweep was asked to produce a configuration with an invalid parameter.
    InvalidSweepParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnsupportedCoreCount { requested } => {
                write!(f, "unsupported core count {requested} (the study covers 1..=32)")
            }
            ModelError::DieBudgetExceeded {
                cores,
                required_mm2,
                budget_mm2,
            } => write!(
                f,
                "{cores} cores need {required_mm2:.1} mm² before L2, exceeding the {budget_mm2:.1} mm² budget"
            ),
            ModelError::InvalidCacheGeometry { reason } => {
                write!(f, "invalid cache geometry: {reason}")
            }
            ModelError::InvalidSweepParameter { reason } => {
                write!(f, "invalid sweep parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_core_count() {
        let e = ModelError::UnsupportedCoreCount { requested: 77 };
        assert!(e.to_string().contains("77"));
    }

    #[test]
    fn display_mentions_budget() {
        let e = ModelError::DieBudgetExceeded {
            cores: 64,
            required_mm2: 500.0,
            budget_mm2: 240.0,
        };
        let s = e.to_string();
        assert!(s.contains("64"));
        assert!(s.contains("240.0"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ModelError::InvalidCacheGeometry {
            reason: "zero capacity".into(),
        });
    }
}
