//! Access-latency model for the on-chip caches.
//!
//! Latencies only need to be *plausible* and *monotone in capacity*: the study's
//! conclusions come from miss counts and off-chip bandwidth, not from picosecond
//! accuracy.  We model L1 latency as fixed and L2 latency as a base cost plus a
//! term that grows with the square root of capacity (wire delay across a larger
//! array), which matches the behaviour of CACTI-style models closely enough.

use crate::tech::ProcessNode;

/// Load-to-use latency of the private L1, in cycles.
pub const L1_LATENCY_CYCLES: u64 = 2;

/// Base (bank access + tag check) latency of the shared L2, in cycles.
pub const L2_BASE_LATENCY_CYCLES: u64 = 8;

/// Latency of the shared L2 in cycles for a given capacity.
///
/// The wire-delay term grows with the square root of the array size and is scaled
/// so that a 1 MiB L2 costs about 12 cycles and an 8 MiB L2 about 20 cycles at
/// 90 nm, with a mild frequency penalty at newer (faster-clocked) nodes.
pub fn l2_latency_cycles(capacity_bytes: usize, node: ProcessNode) -> u64 {
    let mib = capacity_bytes as f64 / (1024.0 * 1024.0);
    let wire = 4.0 * mib.max(0.25).sqrt();
    let freq_penalty = node.frequency_ghz() / ProcessNode::Nm90.frequency_ghz();
    L2_BASE_LATENCY_CYCLES + (wire * freq_penalty).round() as u64
}

/// Round-trip latency to main memory in cycles for a node.
pub fn memory_latency_cycles(node: ProcessNode) -> u64 {
    node.memory_latency_cycles()
}

/// Cost, in cycles, of a context switch on one core (used by the multiprogramming
/// experiment).  Dominated by kernel entry/exit and cold microarchitectural state,
/// not by the cache effects which the simulator models explicitly.
pub const CONTEXT_SWITCH_CYCLES: u64 = 4_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_is_faster_than_l2_is_faster_than_memory() {
        for node in ProcessNode::ALL {
            let l2 = l2_latency_cycles(2 * 1024 * 1024, node);
            assert!(L1_LATENCY_CYCLES < l2);
            assert!(l2 < memory_latency_cycles(node));
        }
    }

    #[test]
    fn l2_latency_grows_with_capacity() {
        let node = ProcessNode::Nm32;
        let mut prev = 0;
        for mib in [1usize, 2, 4, 8, 16, 32] {
            let lat = l2_latency_cycles(mib * 1024 * 1024, node);
            assert!(lat >= prev, "latency must not shrink with capacity");
            prev = lat;
        }
    }

    #[test]
    fn l2_latency_calibration_at_90nm() {
        let one_mib = l2_latency_cycles(1024 * 1024, ProcessNode::Nm90);
        let eight_mib = l2_latency_cycles(8 * 1024 * 1024, ProcessNode::Nm90);
        assert!((10..=14).contains(&one_mib), "1 MiB: {one_mib}");
        assert!((17..=23).contains(&eight_mib), "8 MiB: {eight_mib}");
    }

    #[test]
    fn tiny_caches_do_not_underflow() {
        // The sqrt term is clamped so pathological capacities stay sane.
        let lat = l2_latency_cycles(4 * 1024, ProcessNode::Nm90);
        assert!(lat >= L2_BASE_LATENCY_CYCLES);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn context_switch_cost_is_nontrivial_but_bounded() {
        assert!(CONTEXT_SWITCH_CYCLES >= 1_000);
        assert!(CONTEXT_SWITCH_CYCLES <= 100_000);
    }
}
