//! Complete CMP configurations and the paper's *default configuration* rule.
//!
//! A [`CmpConfig`] bundles everything the cache simulator and execution engine need
//! to know about the machine: core count, the geometry and latency of the private
//! L1s and the shared L2, memory latency, and the off-chip bandwidth ceiling.
//!
//! [`default_config`] derives the configuration the paper would use for a given
//! core count: pick the default process node for that core count, place the cores
//! on the 240 mm² die, and spend the remaining area on shared L2.

use crate::area::{AreaModel, L1_BYTES_PER_CORE};
use crate::error::ModelError;
use crate::latency;
use crate::memsys::{MemSysMode, MemSysParams, ResolvedMemSys};
use crate::tech::ProcessNode;
use crate::LINE_BYTES;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Access latency in core cycles (hit latency).
    pub latency_cycles: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.associativity)
    }

    /// Number of lines in the cache.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }

    /// Validate the geometry: everything non-zero, line size a power of two,
    /// capacity divisible into an integral number of sets.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fail = |reason: &str| {
            Err(ModelError::InvalidCacheGeometry {
                reason: reason.to_string(),
            })
        };
        if self.capacity_bytes == 0 {
            return fail("capacity is zero");
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return fail("line size must be a non-zero power of two");
        }
        if self.associativity == 0 {
            return fail("associativity is zero");
        }
        if !self
            .capacity_bytes
            .is_multiple_of(self.line_bytes * self.associativity)
        {
            return fail("capacity is not an integral number of sets");
        }
        if !self.sets().is_power_of_two() {
            return fail("set count must be a power of two for address slicing");
        }
        Ok(())
    }
}

/// A complete simulated-CMP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmpConfig {
    /// Number of processing cores on the die.
    pub cores: usize,
    /// Process technology node.
    pub node: ProcessNode,
    /// Private per-core L1 geometry.
    pub l1: CacheGeometry,
    /// Shared L2 geometry.
    pub l2: CacheGeometry,
    /// Round-trip latency to main memory, in cycles.
    pub memory_latency_cycles: u64,
    /// Sustained off-chip bandwidth in bytes per core cycle.
    pub offchip_bytes_per_cycle: f64,
    /// Cost of a context switch, in cycles (multiprogramming experiments).
    pub context_switch_cycles: u64,
    /// Core clock frequency in GHz (only used to convert cycles to seconds in reports).
    pub frequency_ghz: f64,
    /// Memory-system model selection and sizing overrides (the default derives
    /// a shared bus + DRAM controller from the channel parameters above).
    pub memsys: MemSysParams,
}

impl CmpConfig {
    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.cores == 0 {
            return Err(ModelError::UnsupportedCoreCount { requested: 0 });
        }
        self.l1.validate()?;
        self.l2.validate()?;
        if self.l2.capacity_bytes < self.l1.capacity_bytes {
            return Err(ModelError::InvalidCacheGeometry {
                reason: "shared L2 smaller than one private L1".to_string(),
            });
        }
        if self.offchip_bytes_per_cycle <= 0.0 {
            return Err(ModelError::InvalidCacheGeometry {
                reason: "off-chip bandwidth must be positive".to_string(),
            });
        }
        self.memsys
            .validate()
            .map_err(|reason| ModelError::InvalidCacheGeometry { reason })?;
        Ok(())
    }

    /// Resolve the configuration's memory-system overrides into concrete
    /// component sizes (bus width, DRAM bandwidth, banks, row latencies).
    pub fn resolved_memsys(&self) -> ResolvedMemSys {
        self.memsys.resolve(
            self.offchip_bytes_per_cycle,
            self.memory_latency_cycles,
            self.l2.line_bytes,
        )
    }

    /// Total private L1 capacity across all cores, in bytes.
    pub fn total_l1_bytes(&self) -> usize {
        self.cores * self.l1.capacity_bytes
    }

    /// Shared L2 capacity per core, in bytes.
    pub fn l2_bytes_per_core(&self) -> usize {
        self.l2.capacity_bytes / self.cores
    }

    /// A compact single-line description, used by the experiment binaries.
    pub fn describe(&self) -> String {
        let memsys = match self.memsys.mode {
            MemSysMode::BusDram => "bus+dram",
            MemSysMode::Legacy => "legacy channel",
        };
        format!(
            "{} core(s) @ {:?}: L1 {} KiB/core, L2 {} KiB shared, mem {} cyc, {:.2} B/cyc off-chip ({memsys})",
            self.cores,
            self.node,
            self.l1.capacity_bytes / 1024,
            self.l2.capacity_bytes / 1024,
            self.memory_latency_cycles,
            self.offchip_bytes_per_cycle
        )
    }
}

/// The private-L1 geometry shared by every configuration in the study.
pub fn default_l1() -> CacheGeometry {
    CacheGeometry {
        capacity_bytes: L1_BYTES_PER_CORE,
        line_bytes: LINE_BYTES,
        associativity: 4,
        latency_cycles: latency::L1_LATENCY_CYCLES,
    }
}

/// Round a capacity down to the nearest value whose set count is a power of two
/// for the given line size and associativity.
fn round_to_power_of_two_sets(capacity: usize, line: usize, assoc: usize) -> usize {
    let set_bytes = line * assoc;
    let sets = capacity / set_bytes;
    if sets == 0 {
        return 0;
    }
    let sets_p2 = if sets.is_power_of_two() {
        sets
    } else {
        sets.next_power_of_two() / 2
    };
    sets_p2 * set_bytes
}

/// The paper's default configuration for a given core count (1..=32).
///
/// Picks the default process node for that core count, places the cores on the
/// fixed 240 mm² die, converts the left-over area into shared-L2 capacity, and
/// fills in latencies and bandwidth from the node.
pub fn default_config(cores: usize) -> Result<CmpConfig, ModelError> {
    let node = ProcessNode::default_for_cores(cores)
        .ok_or(ModelError::UnsupportedCoreCount { requested: cores })?;
    config_for(cores, node, &AreaModel::default())
}

/// Derive a configuration for an explicit (cores, node) pair and area model.
pub fn config_for(
    cores: usize,
    node: ProcessNode,
    area: &AreaModel,
) -> Result<CmpConfig, ModelError> {
    let breakdown = area.breakdown(cores, node)?;
    let l2_assoc = 16;
    let l2_capacity = round_to_power_of_two_sets(breakdown.l2_capacity_bytes, LINE_BYTES, l2_assoc);
    if l2_capacity == 0 {
        return Err(ModelError::DieBudgetExceeded {
            cores,
            required_mm2: breakdown.core_mm2 + breakdown.l1_mm2 + breakdown.overhead_mm2,
            budget_mm2: area.die_mm2,
        });
    }
    let l2 = CacheGeometry {
        capacity_bytes: l2_capacity,
        line_bytes: LINE_BYTES,
        associativity: l2_assoc,
        latency_cycles: latency::l2_latency_cycles(l2_capacity, node),
    };
    let cfg = CmpConfig {
        cores,
        node,
        l1: default_l1(),
        l2,
        memory_latency_cycles: latency::memory_latency_cycles(node),
        offchip_bytes_per_cycle: node.offchip_bytes_per_cycle(),
        context_switch_cycles: latency::CONTEXT_SWITCH_CYCLES,
        frequency_ghz: node.frequency_ghz(),
        memsys: MemSysParams::bus_dram(),
    };
    cfg.validate()?;
    Ok(cfg)
}

/// The core counts used on the x-axis of Figure 1: 1, 2, 4, 8, 16, 32.
pub fn default_core_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// The full set of default configurations used by Figure 1.
pub fn default_sweep() -> Vec<CmpConfig> {
    default_core_counts()
        .into_iter()
        .map(|c| default_config(c).expect("default configurations must exist for the study range"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_l1_is_valid() {
        default_l1().validate().unwrap();
    }

    #[test]
    fn geometry_sets_and_lines_are_consistent() {
        let g = default_l1();
        assert_eq!(g.sets() * g.associativity, g.lines());
        assert_eq!(g.lines() * g.line_bytes, g.capacity_bytes);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = default_l1();
        g.capacity_bytes = 0;
        assert!(g.validate().is_err());

        let mut g = default_l1();
        g.line_bytes = 48;
        assert!(g.validate().is_err());

        let mut g = default_l1();
        g.associativity = 0;
        assert!(g.validate().is_err());

        let mut g = default_l1();
        g.capacity_bytes += 1;
        assert!(g.validate().is_err());
    }

    #[test]
    fn default_configs_exist_and_validate_for_figure1_points() {
        for cores in default_core_counts() {
            let cfg = default_config(cores).unwrap();
            cfg.validate().unwrap();
            assert_eq!(cfg.cores, cores);
        }
    }

    #[test]
    fn default_configs_exist_for_every_count_in_1_to_32() {
        for cores in 1..=32 {
            let cfg = default_config(cores);
            assert!(cfg.is_ok(), "cores={cores}: {cfg:?}");
        }
    }

    #[test]
    fn out_of_range_core_counts_are_rejected() {
        assert!(default_config(0).is_err());
        assert!(default_config(33).is_err());
        assert!(default_config(1000).is_err());
    }

    #[test]
    fn l2_per_core_shrinks_across_the_sweep() {
        let sweep = default_sweep();
        let mut prev = usize::MAX;
        for cfg in &sweep {
            let per_core = cfg.l2_bytes_per_core();
            assert!(
                per_core <= prev,
                "L2 per core should not grow as cores grow ({}: {} vs {})",
                cfg.cores,
                per_core,
                prev
            );
            prev = per_core;
        }
        // And the pressure is real: 32 cores have far less L2 per core than 1 core.
        assert!(
            sweep.first().unwrap().l2_bytes_per_core()
                > 4 * sweep.last().unwrap().l2_bytes_per_core()
        );
    }

    #[test]
    fn l2_is_multi_megabyte_for_every_default_config() {
        for cfg in default_sweep() {
            assert!(
                cfg.l2.capacity_bytes >= 1024 * 1024,
                "cores={}: L2 = {} bytes",
                cfg.cores,
                cfg.l2.capacity_bytes
            );
        }
    }

    #[test]
    fn l2_set_count_is_power_of_two() {
        for cfg in default_sweep() {
            assert!(cfg.l2.sets().is_power_of_two());
        }
    }

    #[test]
    fn bandwidth_per_core_shrinks_as_cores_grow() {
        let sweep = default_sweep();
        let first = &sweep[0];
        let last = sweep.last().unwrap();
        let per_core_first = first.offchip_bytes_per_cycle / first.cores as f64;
        let per_core_last = last.offchip_bytes_per_cycle / last.cores as f64;
        assert!(per_core_last < per_core_first / 4.0);
    }

    #[test]
    fn describe_mentions_cores_and_l2() {
        let cfg = default_config(8).unwrap();
        let d = cfg.describe();
        assert!(d.contains("8 core"));
        assert!(d.contains("KiB shared"));
        assert!(d.contains("bus+dram"));
    }

    #[test]
    fn default_configs_use_the_component_memory_model() {
        for cfg in default_sweep() {
            assert_eq!(cfg.memsys.mode, MemSysMode::BusDram);
            let r = cfg.resolved_memsys();
            // The bus is the off-chip pin budget, and the unloaded row-missing
            // line fill is calibrated to the config's memory latency.
            assert!((r.bus_bytes_per_cycle - cfg.offchip_bytes_per_cycle).abs() < 1e-12);
            let bus_line = crate::memsys::transfer_cycles(64, r.bus_bytes_per_cycle);
            let dram_line = crate::memsys::transfer_cycles(64, r.dram_bytes_per_cycle);
            assert_eq!(
                bus_line + r.dram_miss_cycles + dram_line,
                cfg.memory_latency_cycles,
                "cores={}",
                cfg.cores
            );
        }
    }

    #[test]
    fn config_rejects_invalid_memsys_overrides() {
        let mut cfg = default_config(2).unwrap();
        cfg.memsys.dram_banks = Some(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_rejects_l2_smaller_than_l1() {
        let mut cfg = default_config(2).unwrap();
        cfg.l2.capacity_bytes = 16 * 1024;
        cfg.l2.associativity = 4;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn round_to_power_of_two_sets_behaviour() {
        // 3 MiB with 64 B lines and 16 ways: 3072 sets -> rounds down to 2048 sets = 2 MiB.
        let r = round_to_power_of_two_sets(3 * 1024 * 1024, 64, 16);
        assert_eq!(r, 2 * 1024 * 1024);
        // Exact powers of two are preserved.
        let r = round_to_power_of_two_sets(4 * 1024 * 1024, 64, 16);
        assert_eq!(r, 4 * 1024 * 1024);
        // Too small becomes zero.
        assert_eq!(round_to_power_of_two_sets(512, 64, 16), 0);
    }
}
