//! Cross-crate integration tests for the real-thread runtimes: the same
//! algorithms (from `pdfws-workloads::threaded`) must produce identical results
//! under the WS pool, the PDF pool and sequential execution.

use pdfws::runtime::{ForkJoinPool, PdfPool, WsPool};
use pdfws::workloads::threaded::{parallel_map_reduce, parallel_merge_sort, spawn_tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_data(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[test]
fn both_pools_sort_identically_to_the_standard_library() {
    let data = random_data(50_000, 3);
    let mut expected = data.clone();
    expected.sort_unstable();

    let ws = WsPool::new(2).unwrap();
    let mut ws_data = data.clone();
    parallel_merge_sort(&ws, &mut ws_data, 1_000);
    assert_eq!(ws_data, expected);

    let pdf = PdfPool::new(2).unwrap();
    let mut pdf_data = data;
    parallel_merge_sort(&pdf, &mut pdf_data, 1_000);
    assert_eq!(pdf_data, expected);
}

#[test]
fn map_reduce_agrees_across_pools_and_grains() {
    let data = random_data(30_000, 5);
    let expected = data
        .iter()
        .map(|&x| x.wrapping_mul(31).rotate_left(11))
        .fold(0u64, u64::wrapping_add);
    let ws = WsPool::new(3).unwrap();
    let pdf = PdfPool::new(3).unwrap();
    for grain in [1usize, 64, 1_000, 100_000] {
        let f = |x: u64| x.wrapping_mul(31).rotate_left(11);
        assert_eq!(
            parallel_map_reduce(&ws, &data, grain, &f),
            expected,
            "ws grain {grain}"
        );
        assert_eq!(
            parallel_map_reduce(&pdf, &data, grain, &f),
            expected,
            "pdf grain {grain}"
        );
    }
}

#[test]
fn pools_survive_repeated_installs_and_deep_trees() {
    let ws = WsPool::new(2).unwrap();
    let pdf = PdfPool::new(2).unwrap();
    for _ in 0..5 {
        assert_eq!(spawn_tree(&ws, 8), (1 << 9) - 1);
        assert_eq!(spawn_tree(&pdf, 8), (1 << 9) - 1);
    }
    assert!(ws.executed_jobs() > 0);
    assert!(pdf.executed_jobs() > 0);
}

#[test]
fn nested_joins_across_pool_boundaries_fall_back_to_sequential() {
    // Calling a pool's join from outside any pool thread is legal and sequential.
    let ws = WsPool::new(1).unwrap();
    let (a, b) = ws.join(|| 40, || 2);
    assert_eq!(a + b, 42);
    let pdf = PdfPool::new(1).unwrap();
    let (a, b) = pdf.join(|| "x".to_string(), || "y".to_string());
    assert_eq!(format!("{a}{b}"), "xy");
}

#[test]
fn single_threaded_pools_match_multi_threaded_results() {
    let data = random_data(10_000, 9);
    let f = |x: u64| x ^ (x >> 13);
    let one = WsPool::new(1).unwrap();
    let four = WsPool::new(4).unwrap();
    assert_eq!(
        parallel_map_reduce(&one, &data, 128, &f),
        parallel_map_reduce(&four, &data, 128, &f)
    );
}
