//! Integration tests for the sweep layer: the parallel `SweepRunner` must be
//! bit-identical to the sequential path for arbitrary grids, and a workload's
//! DAG must be built exactly once per sweep regardless of how many cells
//! consume it.

use pdfws::prelude::*;
use pdfws::task_dag::builder::SpTree;
use pdfws::task_dag::{AccessPattern, TaskDag};
use pdfws::workloads::{MergeSort, ParallelScan, Workload, WorkloadClass};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Random series-parallel trees whose leaves carry compute and memory ranges —
/// small enough that a few hundred grid cells stay fast, varied enough to
/// exercise every scheduler path.
fn workload_strategy() -> impl Strategy<Value = SpTree> {
    let leaf = (1u64..1_500, 0u64..3, 1u64..48).prop_map(|(instr, kind, blocks)| {
        let accesses = match kind {
            0 => vec![],
            1 => vec![AccessPattern::range_read(instr * 4096, blocks * 64)],
            _ => vec![
                AccessPattern::range_read(0, blocks * 64), // shared region at 0
                AccessPattern::range_write(instr * 4096, blocks * 64),
            ],
        };
        SpTree::leaf_with_accesses("leaf", instr, accesses)
    });
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(SpTree::Seq),
            prop::collection::vec(inner, 1..4).prop_map(SpTree::Par),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole determinism guarantee: for every grid, `SweepRunner` with
    // N >= 2 threads returns cell-for-cell identical `SimResult`s and
    // identical report ordering to a single-threaded run.
    #[test]
    fn parallel_sweeps_are_bit_identical_to_sequential(
        tree_a in workload_strategy(),
        tree_b in workload_strategy(),
        cores_pick in prop::sample::select(vec![0usize, 1, 2]),
        spec_pick in prop::sample::select(vec![0usize, 1, 2]),
        threads in prop::sample::select(vec![2usize, 3, 7]),
    ) {
        let cores: &[usize] = match cores_pick {
            0 => &[1],
            1 => &[2, 4],
            _ => &[1, 3, 8],
        };
        let specs: Vec<SchedulerSpec> = match spec_pick {
            0 => vec![SchedulerSpec::pdf()],
            1 => SchedulerSpec::paper_pair().to_vec(),
            _ => vec![
                "ws:victim=random,seed=7".parse().unwrap(),
                "hybrid:threshold=3".parse().unwrap(),
                "pdf:lag=4".parse().unwrap(),
            ],
        };
        let grid = SweepGrid::new()
            .workload(WorkloadInstance::from_parts(
                "a",
                WorkloadClass::DivideAndConquer,
                tree_a.into_dag().unwrap(),
                1 << 16,
            ))
            .workload(WorkloadInstance::from_parts(
                "b",
                WorkloadClass::LowReuse,
                tree_b.into_dag().unwrap(),
                1 << 16,
            ))
            .cores(cores)
            .specs(&specs);

        let sequential = SweepRunner::sequential().run(&grid).unwrap();
        let parallel = SweepRunner::new(threads).run(&grid).unwrap();

        // Report ordering: workloads in insertion order, cores outer x specs
        // inner — and every cell's SimResult bit-identical.
        prop_assert_eq!(&parallel, &sequential);
        for (seq_report, par_report) in sequential.reports().iter().zip(parallel.reports()) {
            prop_assert_eq!(&seq_report.workload, &par_report.workload);
            prop_assert_eq!(seq_report.runs().len(), cores.len() * specs.len());
            for (s, p) in seq_report.runs().iter().zip(par_report.runs()) {
                prop_assert_eq!(s.cores, p.cores);
                prop_assert_eq!(&s.scheduler, &p.scheduler);
                prop_assert_eq!(&s.metrics, &p.metrics);
            }
        }
    }
}

/// A workload wrapper that counts how many times `build_dag` runs.
struct CountingWorkload<W: Workload> {
    inner: W,
    builds: AtomicUsize,
}

impl<W: Workload> CountingWorkload<W> {
    fn new(inner: W) -> Self {
        CountingWorkload {
            inner,
            builds: AtomicUsize::new(0),
        }
    }
}

impl<W: Workload> Workload for CountingWorkload<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn class(&self) -> WorkloadClass {
        self.inner.class()
    }

    fn build_dag(&self) -> TaskDag {
        self.builds.fetch_add(1, Ordering::SeqCst);
        self.inner.build_dag()
    }

    fn data_bytes(&self) -> u64 {
        self.inner.data_bytes()
    }
}

/// Pins the `Arc<TaskDag>` sharing behavior: a (cores x specs) sweep — plus
/// its sequential baseline — builds the workload's DAG exactly once.
#[test]
fn build_dag_runs_exactly_once_per_sweep() {
    let counting = CountingWorkload::new(MergeSort::small());
    let spec = WorkloadInstance::from_workload(&counting);
    assert_eq!(counting.builds.load(Ordering::SeqCst), 1);

    let grid = SweepGrid::new()
        .workload(spec.clone())
        .cores(&[1, 2, 4])
        .specs(&[
            SchedulerSpec::pdf(),
            SchedulerSpec::ws(),
            SchedulerSpec::static_partition(),
        ]);
    let sweep = SweepRunner::new(3).run(&grid).unwrap();
    assert_eq!(sweep.reports()[0].runs().len(), 9);
    assert_eq!(
        counting.builds.load(Ordering::SeqCst),
        1,
        "9 cells + baseline must share one DAG build"
    );

    // The classic Experiment veneer routes through the same path.
    let report = Experiment::new(spec)
        .core_sweep(&[2, 4])
        .threads(2)
        .run()
        .unwrap();
    assert_eq!(report.runs().len(), 4);
    assert_eq!(
        counting.builds.load(Ordering::SeqCst),
        1,
        "re-running experiments over the same WorkloadInstance must not rebuild"
    );
}

/// The Experiment/StreamExperiment veneers expose the same threading knob and
/// stay deterministic under it.
#[test]
fn experiment_and_stream_threads_are_deterministic() {
    let spec = WorkloadInstance::from_workload(&ParallelScan::small());
    let seq = Experiment::new(spec.clone())
        .core_sweep(&[1, 2])
        .threads(1)
        .run()
        .unwrap();
    let par = Experiment::new(spec)
        .core_sweep(&[1, 2])
        .threads(4)
        .run()
        .unwrap();
    assert_eq!(seq, par);

    let mix = pdfws::stream::JobMix::class_b();
    let stream = |threads: usize| {
        StreamExperiment::new(mix.clone())
            .jobs(6)
            .cores(2)
            .threads(threads)
            .run()
            .unwrap()
    };
    assert_eq!(stream(1), stream(3));
}
