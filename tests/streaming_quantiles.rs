//! Property tests for the constant-memory streaming estimators behind the
//! serving tier's sinks: the P² quantile markers and the reservoir sampler
//! must track the exact buffered quantiles within tolerance across seeds,
//! stream lengths, and distributions — including the heavy-tailed regimes
//! the serving tier is built for.

use pdfws::metrics::{Quantiles, ReservoirSampler, StreamingQuantiles};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw `n` observations from the named distribution via inverse-CDF
/// transforms of one seeded uniform stream (reproducible per case).
fn sample_stream(dist: &str, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
            match dist {
                "uniform" => u * 1_000.0,
                "exponential" => -(1.0 - u).ln() * 250.0,
                // Pareto with alpha = 1.5: infinite variance, the serving
                // tier's heavy-tailed arrival/sojourn regime.
                "pareto" => 50.0 * (1.0 - u).powf(-1.0 / 1.5),
                // A latency floor plus a far-away slow mode.
                "bimodal" => {
                    if u < 0.9 {
                        u * 100.0
                    } else {
                        5_000.0 + u * 1_000.0
                    }
                }
                other => unreachable!("unknown distribution {other}"),
            }
        })
        .collect()
}

/// The fraction of observations at or below `x` — rank error is the right
/// yardstick for a quantile estimate on a heavy tail, where a tiny rank slip
/// can be a large relative *value* error without being wrong.
fn rank_of(sorted: &[f64], x: f64) -> f64 {
    let below = sorted.partition_point(|&v| v <= x);
    below as f64 / sorted.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn p2_quantiles_track_buffered_ranks(
        dist in prop::sample::select(vec!["uniform", "exponential", "pareto", "bimodal"]),
        n in 2_000usize..20_000,
        seed in 0u64..1_000_000,
    ) {
        let values = sample_stream(dist, n, seed);
        let mut s = StreamingQuantiles::new();
        for &v in &values {
            s.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);

        // Exact aggregates must be exact regardless of distribution.
        let exact = Quantiles::from_values(&values);
        prop_assert_eq!(s.quantiles().count, exact.count);
        prop_assert_eq!(s.max(), exact.max);
        prop_assert!((s.mean() - exact.mean).abs() <= 1e-6 * exact.mean.abs().max(1.0));

        // Each P² estimate must land within a few rank points of its target.
        for (target, est, slack) in [
            (0.50, s.p50(), 0.06),
            (0.95, s.p95(), 0.04),
            (0.99, s.p99(), 0.02),
        ] {
            let rank = rank_of(&sorted, est);
            prop_assert!(
                (rank - target).abs() <= slack,
                "{dist} n={n} seed={seed}: p{} estimate {est} sits at rank {rank:.4}",
                target * 100.0,
            );
        }
    }

    #[test]
    fn reservoir_percentiles_track_buffered_ranks(
        dist in prop::sample::select(vec!["uniform", "exponential", "pareto", "bimodal"]),
        n in 5_000usize..30_000,
        seed in 0u64..1_000_000,
    ) {
        let values = sample_stream(dist, n, seed);
        let mut r = ReservoirSampler::new(1_024, seed ^ 0xD15C);
        for &v in &values {
            r.observe(v);
        }
        prop_assert_eq!(r.sample().len(), 1_024);
        prop_assert_eq!(r.seen(), n as u64);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        // A 1k uniform sample puts every percentile within a few rank points
        // with margin to spare (binomial σ at p50 is ~1.6 points).
        for (target, slack) in [(0.50, 0.08), (0.95, 0.05), (0.99, 0.02)] {
            let est = r.percentile(target * 100.0);
            let rank = rank_of(&sorted, est);
            prop_assert!(
                (rank - target).abs() <= slack,
                "{dist} n={n} seed={seed}: reservoir p{} {est} sits at rank {rank:.4}",
                target * 100.0,
            );
        }
    }

    #[test]
    fn streaming_state_is_deterministic_and_order_dependent_only(
        n in 1_000usize..5_000,
        seed in 0u64..1_000_000,
    ) {
        // Same stream twice -> bit-identical streaming state; the estimators
        // never consult ambient randomness.
        let values = sample_stream("pareto", n, seed);
        let fold = || {
            let mut s = StreamingQuantiles::new();
            let mut r = ReservoirSampler::new(256, seed);
            for &v in &values {
                s.observe(v);
                r.observe(v);
            }
            (s.quantiles(), r.sample().to_vec())
        };
        let (qa, ra) = fold();
        let (qb, rb) = fold();
        prop_assert_eq!(qa, qb);
        prop_assert_eq!(ra, rb);
    }
}
