//! Cross-crate battery for the `adaptive` scheduler: the monotone tuning rule
//! (property-tested), sweep determinism across runner thread counts, and the
//! headline regression — a phase-changing workload on which online tuning
//! strictly beats every fixed policy it interpolates between.

use pdfws::prelude::*;
use pdfws::schedulers::adaptive::{tuned_threshold, window_pressure};
use pdfws::schedulers::{simulate, WindowFeedback};
use pdfws::task_dag::builder::DagBuilder;
use pdfws::task_dag::{AccessPattern, TaskDag};
use pdfws::workloads::layout::AddressSpace;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The tuning rule the module docs promise: for any fixed band and step,
    // higher observed pressure never lowers the threshold.
    #[test]
    fn tuned_threshold_is_monotone_in_pressure(
        current in 1usize..10_000,
        step in 0usize..64,
        // The vendored proptest has no f64 range strategy: draw pressures and
        // band edges in integer milli-units and scale down.
        lo_milli in 10u64..10_000,
        band_milli in 0u64..10_000,
        p1_milli in 0u64..2_000_000,
        p2_milli in 0u64..2_000_000,
    ) {
        let lo = lo_milli as f64 / 1000.0;
        let hi = lo + band_milli as f64 / 1000.0;
        let (p1, p2) = (p1_milli as f64 / 1000.0, p2_milli as f64 / 1000.0);
        let (low_p, high_p) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let at_low = tuned_threshold(current, low_p, lo, hi, step);
        let at_high = tuned_threshold(current, high_p, lo, hi, step);
        prop_assert!(
            at_low <= at_high,
            "pressure {low_p} -> threshold {at_low}, pressure {high_p} -> threshold {at_high}"
        );
        // And one window moves the threshold by at most one step, floored at 1.
        for t in [at_low, at_high] {
            prop_assert!(t >= current.saturating_sub(step).max(1));
            prop_assert!(t <= current.saturating_add(step));
        }
    }

    // The pressure signal itself is monotone in both of its inputs: more L2
    // misses or more migrations never read as *less* scheduling pressure.
    #[test]
    fn window_pressure_is_monotone_in_misses_and_migrations(
        instructions in 1u64..1_000_000,
        misses in 0u64..10_000,
        migrations in 0u64..10_000,
        extra in 1u64..1_000,
    ) {
        let fb = |l2_misses, migrations| WindowFeedback {
            cycles: 4096,
            instructions,
            l2_misses,
            migrations,
        };
        let base = window_pressure(&fb(misses, migrations));
        prop_assert!(window_pressure(&fb(misses + extra, migrations)) > base);
        prop_assert!(window_pressure(&fb(misses, migrations + extra)) > base);
    }
}

// The adaptive policy's feedback loop runs through the engine's windowed
// sampling, which is quantization-independent — so a sweep over adaptive
// specs must stay bit-identical no matter how many runner threads execute it.
#[test]
fn adaptive_sweeps_are_deterministic_across_runner_threads() {
    let specs: Vec<SchedulerSpec> = [
        "adaptive",
        "adaptive:threshold=4,window=512,step=2,lo=0.25,hi=8",
        "adaptive:victim=hier,cluster=4,steal_cycles=64,fail_backoff=32",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    let grid = SweepGrid::new()
        .workloads(&[
            SyntheticTree::small().into_instance(),
            SpMv::small().into_instance(),
        ])
        .cores(&[4, 8])
        .specs(&specs);
    let sequential = SweepRunner::new(1)
        .run(&grid)
        .expect("adaptive sweep runs")
        .into_reports();
    for threads in [2, 4] {
        let parallel = SweepRunner::new(threads)
            .run(&grid)
            .expect("adaptive sweep runs")
            .into_reports();
        assert_eq!(parallel, sequential, "{threads} runner threads diverged");
    }
}

/// A two-phase program built to make any *fixed* policy lose one phase.
///
/// Phase A — constructive sharing: `groups` shared buffers, each read in full
/// by several tasks.  The depth-first global queue co-schedules a group's
/// readers, so one buffer is hot at a time; work stealing scatters the groups
/// across deques and thrashes the shared L2.
///
/// Phase B — private reuse: `chains` of fork-join diamonds, each diamond
/// re-reading its chain's private buffer.  Per-core deques keep a chain (and
/// its buffer) on one core; the global queue lets cores poach diamond halves
/// from lower-ranked chains, bouncing buffers between private L1s.
fn phase_change_dag() -> TaskDag {
    let (groups, per_group, group_bytes) = (4usize, 4usize, 128 * 1024u64);
    let (chains, links, chain_bytes) = (12usize, 10usize, 16 * 1024u64);
    let mut space = AddressSpace::new();
    let mut b = DagBuilder::new();
    let root = b.task("root").instructions(20).build();
    let barrier = b.task("barrier").instructions(20).build();
    for g in 0..groups {
        let region = space.alloc(group_bytes);
        for t in 0..per_group {
            let task = b
                .task(&format!("share[{g},{t}]"))
                .instructions(500)
                .accesses(vec![AccessPattern::RepeatedRange {
                    base: region.base,
                    len: group_bytes,
                    passes: 1,
                    write: false,
                }])
                .build();
            b.edge(root, task);
            b.edge(task, barrier);
        }
    }
    let done = b.task("done").instructions(20).build();
    for c in 0..chains {
        let region = space.alloc(chain_bytes);
        let half = chain_bytes / 2;
        let mut prev = barrier;
        for l in 0..links {
            let fork = b.task(&format!("fork[{c},{l}]")).instructions(50).build();
            let join = b.task(&format!("join[{c},{l}]")).instructions(50).build();
            b.edge(prev, fork);
            for s in 0..2u64 {
                let sub = b
                    .task(&format!("diamond[{c},{l},{s}]"))
                    .instructions(100)
                    .accesses(vec![
                        AccessPattern::RepeatedRange {
                            base: region.base,
                            len: chain_bytes,
                            passes: 1,
                            write: false,
                        },
                        AccessPattern::range_write(region.base + s * half, half),
                    ])
                    .build();
                b.edge(fork, sub);
                b.edge(sub, join);
            }
            prev = join;
        }
        b.edge(prev, done);
    }
    b.finish()
        .expect("phase-change DAG is valid by construction")
}

// The headline regression: on the phase-changing workload, the online-tuned
// hybrid strictly beats *every* fixed policy in the zoo on makespan — pdf
// loses phase B (diamond halves poached across cores), ws loses phase A
// (shared groups scattered over deques), and a fixed hybrid threshold can
// only pick one side of the trade.  The tuned spec starts PDF-biased
// (threshold above the phase-A backlog), then the low-pressure phase-B
// windows decay the threshold until the deque mode engages.
#[test]
fn adaptive_beats_every_fixed_policy_on_a_phase_change() {
    let dag = phase_change_dag();
    let cfg = default_config(8).unwrap();
    let run = |spec: &str| {
        let spec: SchedulerSpec = spec.parse().unwrap();
        simulate(&dag, &cfg, &spec, &SimOptions::default())
    };
    let adaptive = run("adaptive:threshold=48,window=128,step=8,lo=0.05,hi=1000");
    let fixed = [
        run("pdf"),
        run("ws"),
        run("ws:steal=half"),
        run("hybrid:threshold=16"),
    ];
    for r in &fixed {
        assert!(
            adaptive.cycles < r.cycles,
            "adaptive ({} cycles) should strictly beat {} ({} cycles)",
            adaptive.cycles,
            r.scheduler,
            r.cycles
        );
    }
    // The phases are real: the fixed policies disagree with each other...
    let pdf = &fixed[0];
    let ws = &fixed[1];
    assert_ne!(
        pdf.cycles, ws.cycles,
        "phases collapsed — the DAG lost its trade-off"
    );
    assert_eq!(pdf.migrations, 0, "pdf has no migration concept");
    // ...and the adaptive run actually used both modes: it migrated work
    // (deque phase) yet stayed under the pure deque policy's churn.
    assert!(adaptive.migrations > 0, "adaptive never entered deque mode");
    assert!(
        adaptive.migrations < ws.migrations,
        "adaptive should steal less than always-deques ws ({} vs {})",
        adaptive.migrations,
        ws.migrations
    );
}
