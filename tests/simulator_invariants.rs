//! Property-based integration tests: scheduler/engine invariants that must hold
//! for arbitrary fork-join workloads on arbitrary (valid) machine shapes.

use pdfws::cmp_model::default_config;
use pdfws::schedulers::{simulate, SchedulerSpec, SimOptions};
use pdfws::task_dag::builder::SpTree;
use pdfws::task_dag::AccessPattern;
use proptest::prelude::*;

/// Random series-parallel trees whose leaves carry compute and a mix of private
/// and shared memory ranges.
fn workload_strategy() -> impl Strategy<Value = SpTree> {
    let leaf = (1u64..3_000, 0u64..3, 1u64..64).prop_map(|(instr, kind, blocks)| {
        let accesses = match kind {
            0 => vec![],
            1 => vec![AccessPattern::range_read(instr * 4096, blocks * 64)],
            _ => vec![
                AccessPattern::range_read(0, blocks * 64), // shared region at 0
                AccessPattern::range_write(instr * 4096, blocks * 64),
            ],
        };
        SpTree::leaf_with_accesses("leaf", instr, accesses)
    });
    leaf.prop_recursive(3, 40, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(SpTree::Seq),
            prop::collection::vec(inner, 1..4).prop_map(SpTree::Par),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_scheduler_executes_all_work_exactly_once(
        tree in workload_strategy(),
        cores in prop::sample::select(vec![1usize, 2, 3, 8]),
    ) {
        let dag = tree.into_dag().unwrap();
        let cfg = default_config(cores).unwrap();
        for spec in [
            SchedulerSpec::pdf(),
            SchedulerSpec::ws(),
            SchedulerSpec::static_partition(),
            "hybrid:threshold=4".parse().unwrap(),
            "pdf:lag=6".parse().unwrap(),
            "ws:steal=half,victim=nearest".parse().unwrap(),
        ] {
            let r = simulate(&dag, &cfg, &spec, &SimOptions::default());
            prop_assert_eq!(r.tasks, dag.len());
            prop_assert_eq!(r.instructions, dag.work());
            prop_assert_eq!(r.memory_accesses, dag.analyze().memory_accesses);
            // The makespan is bounded below by the span and above by the work plus
            // all memory stall time (each reference costs at most memory latency
            // plus the worst-case bandwidth queueing recorded by the engine).
            prop_assert!(r.cycles >= dag.span());
            let stall_bound = r.memory_accesses * cfg.memory_latency_cycles + r.offchip_queue_cycles;
            prop_assert!(r.cycles <= dag.work() + stall_bound);
        }
    }

    #[test]
    fn parallel_runs_are_never_slower_than_sequential_by_more_than_overheads(
        tree in workload_strategy(),
    ) {
        let dag = tree.into_dag().unwrap();
        let cfg = default_config(4).unwrap();
        let seq_cfg = default_config(1).unwrap();
        let seq = simulate(&dag, &seq_cfg, &SchedulerSpec::pdf(), &SimOptions::default());
        for spec in SchedulerSpec::paper_pair() {
            let par = simulate(&dag, &cfg, &spec, &SimOptions::default());
            // Greedy scheduling on more cores with the same or larger L2 should not
            // lose more than 2x to cache/bandwidth interference on these tiny inputs.
            prop_assert!(par.cycles <= seq.cycles * 2, "{}: {} vs {}", spec, par.cycles, seq.cycles);
        }
    }

    #[test]
    fn l2_misses_never_exceed_memory_accesses(
        tree in workload_strategy(),
        cores in prop::sample::select(vec![1usize, 4]),
    ) {
        let dag = tree.into_dag().unwrap();
        let cfg = default_config(cores).unwrap();
        let r = simulate(&dag, &cfg, &SchedulerSpec::ws(), &SimOptions::default());
        prop_assert!(r.hierarchy.l2_misses() <= r.memory_accesses);
        prop_assert!(r.hierarchy.memory_fills <= r.hierarchy.l2.misses());
        let l1_total = r.hierarchy.l1_total();
        prop_assert_eq!(l1_total.accesses(), r.memory_accesses);
        prop_assert!(r.offchip_bytes() >= r.hierarchy.memory_fills * 64);
    }
}
