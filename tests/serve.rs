//! Cross-crate integration tests for the serving tier (`pdfws-serve`),
//! through the umbrella crate's public API: SLO-holding under overload,
//! end-to-end determinism, autoscaling, the arrival-spec axis, and the
//! sustained constant-state serving path.

use pdfws::prelude::*;
use pdfws::serve::{parse_tenants, run_serve, ArrivalSpec, ServeConfig};

fn base_cfg(jobs: usize, rate: f64) -> ServeConfig {
    let mut cfg = ServeConfig::new(4, SchedulerSpec::pdf());
    cfg.jobs = jobs;
    cfg.arrivals = ArrivalSpec::poisson(rate);
    cfg.autoscale = None;
    cfg
}

#[test]
fn shedding_holds_the_slo_where_the_baseline_violates_it() {
    let mut cfg = base_cfg(600, 1_000.0);
    let shed = run_serve(&cfg).unwrap();
    assert!(
        shed.shed_rate() > 0.2,
        "deep overload must shed: {}",
        shed.shed_rate()
    );
    assert!(
        shed.worst_p99_over_target() <= 1.0,
        "admitted p99 must stay inside every tenant's SLO: {}",
        shed.worst_p99_over_target()
    );
    cfg.shedding = false;
    let baseline = run_serve(&cfg).unwrap();
    assert_eq!(baseline.shed, 0);
    assert!(
        baseline.worst_p99_over_target() > 1.0,
        "without shedding the same load must violate the SLO: {}",
        baseline.worst_p99_over_target()
    );
}

#[test]
fn serving_runs_are_deterministic_end_to_end() {
    let mut cfg = base_cfg(300, 80.0);
    cfg.tenants = parse_tenants("api:weight=4,p99=1500000+bulk:slo=batch,mix=class-b").unwrap();
    let a = run_serve(&cfg).unwrap();
    let b = run_serve(&cfg).unwrap();
    assert_eq!(a, b, "same config must reproduce the full report");
    cfg.seed ^= 1;
    let c = run_serve(&cfg).unwrap();
    assert_ne!(a, c, "a different seed must change the run");
}

#[test]
fn the_autoscaler_powers_down_a_light_load() {
    let mut cfg = ServeConfig::new(8, SchedulerSpec::pdf());
    cfg.jobs = 200;
    cfg.arrivals = ArrivalSpec::poisson(1.0);
    let report = run_serve(&cfg).unwrap();
    assert!(report.scale_events > 0, "light load must trigger scaling");
    assert!(
        report.final_cores < 8,
        "the tier should end below full capacity, got {}",
        report.final_cores
    );
    assert!(report.mean_active_cores < 8.0);
}

#[test]
fn every_open_loop_arrival_process_serves_end_to_end() {
    for spec in [
        "poisson:rate=60",
        "uniform:gap=15000",
        "pareto:alpha=1.5,rate=60",
        "burst:period=200000,duty=0.25,hi=120,lo=10",
        "diurnal",
    ] {
        let mut cfg = base_cfg(150, 60.0);
        cfg.arrivals = ArrivalSpec::parse(spec).unwrap();
        let report = run_serve(&cfg).unwrap();
        assert_eq!(report.offered, 150, "{spec}");
        assert_eq!(
            report.completed + report.shed,
            report.offered,
            "{spec}: every offered job must complete or shed"
        );
    }
}

#[test]
fn sustained_runs_keep_constant_size_state() {
    // 40k jobs through the full admission + dispatch + autoscale path.  The
    // report's only per-event artifacts are capped (scale log) or streaming
    // (quantiles), so this scales to 10⁶⁺ jobs in the CI memory smoke.
    let mut cfg = ServeConfig::new(8, SchedulerSpec::pdf());
    cfg.jobs = 40_000;
    cfg.arrivals = ArrivalSpec::poisson(120.0);
    let report = run_serve(&cfg).unwrap();
    assert_eq!(report.offered, 40_000);
    assert_eq!(report.completed + report.shed, report.offered);
    assert!(
        report.scale_log.len() <= 32,
        "scale log must stay capped: {}",
        report.scale_log.len()
    );
    for tenant in &report.tenants {
        assert_eq!(
            tenant.offered,
            tenant.completed + tenant.shed,
            "{}: per-tenant conservation",
            tenant.name
        );
        assert!(tenant.sojourn.p50 <= tenant.sojourn.p95, "{}", tenant.name);
        assert!(tenant.sojourn.p95 <= tenant.sojourn.p99, "{}", tenant.name);
        assert!(tenant.goodput_jobs_per_mcycle > 0.0, "{}", tenant.name);
    }
}
