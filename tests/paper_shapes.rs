//! Qualitative reproduction of the paper's findings at test-friendly scale.
//!
//! Absolute numbers differ from the paper (its substrate was a full-system
//! simulator and its inputs were larger), but the *shapes* the brief announcement
//! reports must hold: PDF produces no more off-chip traffic than WS on the
//! sharing-friendly workloads once the data outgrows the shared L2, the two
//! schedulers tie on low-reuse / compute-bound workloads, and the coarse-grained
//! program variants lose the benefit.
//!
//! To keep the tests fast, the machine is scaled down (small L1/L2) together with
//! the inputs so that the capacity effects the paper studies still occur.

use pdfws::prelude::*;

/// An 8-core machine whose caches are scaled down for test-sized inputs:
/// 8 KiB private L1s and a 256 KiB shared L2.
fn small_cache_config(cores: usize) -> CmpConfig {
    let mut cfg = default_config(cores).expect("default configuration exists");
    cfg.l1.capacity_bytes = 8 * 1024;
    cfg.l2.capacity_bytes = 256 * 1024;
    cfg.l2.associativity = 16;
    cfg.validate().expect("scaled-down configuration is valid");
    cfg
}

#[test]
fn mergesort_pdf_produces_no_more_l2_misses_than_ws_at_scale() {
    // 2^16 keys * 8 B * 2 buffers = 1 MiB of data against a 256 KiB L2.
    let spec = MergeSort::new(1 << 16).with_grain(1 << 10).into_spec();
    for cores in [8usize, 16] {
        let report = Experiment::new(spec.clone())
            .cores(cores)
            .with_config(small_cache_config(cores))
            .run()
            .unwrap();
        let pdf = report.find(cores, &SchedulerSpec::pdf()).unwrap();
        let ws = report.find(cores, &SchedulerSpec::ws()).unwrap();
        assert!(
            pdf.metrics.l2_mpki() <= ws.metrics.l2_mpki() * 1.02,
            "{cores} cores: pdf mpki {} vs ws mpki {}",
            pdf.metrics.l2_mpki(),
            ws.metrics.l2_mpki()
        );
        assert!(
            pdf.metrics.offchip_bytes()
                <= ws.metrics.offchip_bytes() + ws.metrics.offchip_bytes() / 50,
            "{cores} cores: pdf traffic {} vs ws traffic {}",
            pdf.metrics.offchip_bytes(),
            ws.metrics.offchip_bytes()
        );
    }
}

#[test]
fn ws_l2_misses_grow_with_cores_faster_than_pdf_for_mergesort() {
    let spec = MergeSort::new(1 << 16).with_grain(1 << 10).into_spec();
    let mpki = |cores: usize, scheduler: &SchedulerSpec| {
        let report = Experiment::new(spec.clone())
            .cores(cores)
            .with_config(small_cache_config(cores))
            .schedulers(std::slice::from_ref(scheduler))
            .run()
            .unwrap();
        report.find(cores, scheduler).unwrap().metrics.l2_mpki()
    };
    let (pdf, ws) = (SchedulerSpec::pdf(), SchedulerSpec::ws());
    let pdf_growth = mpki(16, &pdf) / mpki(1, &pdf);
    let ws_growth = mpki(16, &ws) / mpki(1, &ws);
    assert!(
        ws_growth >= pdf_growth,
        "WS miss growth ({ws_growth:.3}x) should be at least PDF's ({pdf_growth:.3}x)"
    );
}

#[test]
fn low_reuse_scan_ties_between_schedulers() {
    let spec = ParallelScan::new(1 << 15).into_spec();
    let cores = 8;
    let report = Experiment::new(spec)
        .cores(cores)
        .with_config(small_cache_config(cores))
        .run()
        .unwrap();
    let pdf = report.find(cores, &SchedulerSpec::pdf()).unwrap();
    let ws = report.find(cores, &SchedulerSpec::ws()).unwrap();
    let rel = ws.metrics.cycles as f64 / pdf.metrics.cycles as f64;
    assert!(
        (0.85..=1.20).contains(&rel),
        "scan should tie: relative speedup {rel:.3}"
    );
}

#[test]
fn compute_bound_kernel_ties_between_schedulers() {
    let spec = ComputeKernel::new(1 << 13).into_spec();
    let cores = 8;
    let report = Experiment::new(spec)
        .cores(cores)
        .with_config(small_cache_config(cores))
        .run()
        .unwrap();
    let pdf = report.find(cores, &SchedulerSpec::pdf()).unwrap();
    let ws = report.find(cores, &SchedulerSpec::ws()).unwrap();
    let rel = ws.metrics.cycles as f64 / pdf.metrics.cycles as f64;
    assert!(
        (0.9..=1.1).contains(&rel),
        "compute kernel should tie: relative speedup {rel:.3}"
    );
}

#[test]
fn coarse_grained_mergesort_cannot_exploit_constructive_sharing() {
    // The paper's finding is not that coarse-grained code is always slower, but
    // that it "cannot exploit the constructive cache behavior inherent in PDF":
    // with only one big task per core, PDF and WS schedule essentially the same
    // thing, so PDF's traffic advantage disappears, while the fine-grained version
    // of the same program retains it.
    let cores = 8;
    let run = |spec: WorkloadInstance| {
        Experiment::new(spec)
            .cores(cores)
            .with_config(small_cache_config(cores))
            .schedulers(&SchedulerSpec::paper_pair())
            .run()
            .unwrap()
    };
    let fine = run(MergeSort::new(1 << 16).with_grain(1 << 10).into_spec());
    let coarse = run(MergeSort::new(1 << 16)
        .coarse_grained(cores as u64)
        .into_spec());

    let fine_reduction = fine.pdf_traffic_reduction_percent(cores).unwrap();
    let coarse_reduction = coarse.pdf_traffic_reduction_percent(cores).unwrap();
    assert!(
        fine_reduction > coarse_reduction + 1.0,
        "fine-grained PDF should cut traffic more than coarse-grained \
         (fine {fine_reduction:.1}% vs coarse {coarse_reduction:.1}%)"
    );
    // And the coarse variant's PDF-vs-WS gap is negligible in absolute terms.
    assert!(
        coarse_reduction.abs() < 5.0,
        "coarse-grained PDF and WS should be nearly identical, got {coarse_reduction:.1}%"
    );
}

#[test]
fn shrinking_the_l2_hurts_ws_more_than_pdf() {
    // The cache power-down finding: with half the L2 powered, PDF's running time
    // degrades no more than WS's.  The input is sized so the paper's
    // precondition holds — PDF's depth-first working set still (mostly) fits
    // in the halved L2 while WS's per-core working sets spill: at 2^16 keys
    // both schedulers outgrow even the full 256 KiB L2 and the halving
    // penalty is dominated by capacity misses neither scheduler can avoid.
    let spec = MergeSort::new(1 << 15).with_grain(1 << 10).into_spec();
    let cores = 8;
    let full = small_cache_config(cores);
    let mut half = full;
    half.l2.capacity_bytes = full.l2.capacity_bytes / 2;
    half.validate().unwrap();

    let slowdown = |scheduler: &SchedulerSpec| {
        let run_with = |cfg: CmpConfig| {
            let report = Experiment::new(spec.clone())
                .cores(cores)
                .with_config(cfg)
                .schedulers(std::slice::from_ref(scheduler))
                .run()
                .unwrap();
            report.find(cores, scheduler).unwrap().metrics.cycles as f64
        };
        run_with(half) / run_with(full)
    };
    let pdf_slowdown = slowdown(&SchedulerSpec::pdf());
    let ws_slowdown = slowdown(&SchedulerSpec::ws());
    assert!(
        pdf_slowdown <= ws_slowdown * 1.05,
        "pdf slowdown {pdf_slowdown:.3} vs ws slowdown {ws_slowdown:.3}"
    );
}
