//! Cross-crate tests for the `SchedulerSpec` API: `FromStr`/`Display`
//! round-trips (property-tested), error reporting, registry extension, the
//! sequential-baseline equivalence, and spec threading through the experiment
//! builders.

use pdfws::prelude::*;
use pdfws::schedulers::{simulate, simulate_sequential};
use pdfws::task_dag::builder::SpTree;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a valid spec string for one of the built-in policies from raw fuzz
/// input.  `mask` selects which optional parameters appear; `a`/`b` supply
/// values; `order` scrambles the parameter order (round-tripping must not
/// depend on it).
fn spec_string(policy: usize, mask: u8, a: u64, b: u64, order: bool) -> String {
    let mut params: Vec<String> = Vec::new();
    // The work-stealing option block shared by `ws`, `hybrid` and `adaptive`:
    // victim strategy (with its dependent seed/cluster parameters),
    // granularity, and the steal prices.
    let ws_params = |params: &mut Vec<String>, mask: u8| {
        if mask & 1 != 0 {
            let victim = ["round-robin", "random", "nearest", "hier"][(a % 4) as usize];
            params.push(format!("victim={victim}"));
            // `seed` requires victim=random, `cluster` requires victim=hier.
            if mask & 4 != 0 && victim == "random" {
                params.push(format!("seed={}", b % 10_000));
            }
            if mask & 4 != 0 && victim == "hier" {
                params.push(format!("cluster={}", 1 + b % 8));
            }
        }
        if mask & 2 != 0 {
            let steal = ["one", "half"][(b % 2) as usize];
            params.push(format!("steal={steal}"));
        }
        if mask & 8 != 0 {
            params.push(format!("steal_cycles={}", a % 512));
        }
        if mask & 16 != 0 {
            params.push(format!("fail_backoff={}", b % 512));
        }
    };
    let name = match policy % 5 {
        0 => {
            if mask & 1 != 0 {
                params.push(format!("lag={}", a % 64));
            }
            "pdf"
        }
        1 => {
            ws_params(&mut params, mask);
            "ws"
        }
        2 => "static",
        3 => {
            if mask & 32 != 0 {
                params.push(format!("threshold={}", a % 128));
            }
            ws_params(&mut params, mask);
            "hybrid"
        }
        _ => {
            if mask & 32 != 0 {
                params.push(format!("threshold={}", a % 128));
                params.push(format!("window={}", 1 + a % 8192));
                params.push(format!("step={}", b % 16));
                // A valid band: lo <= hi by construction, both positive.
                let lo = 1 + a % 4;
                params.push(format!("lo={lo}"));
                params.push(format!("hi={}", lo + b % 8));
            }
            ws_params(&mut params, mask);
            "adaptive"
        }
    };
    if order {
        params.reverse();
    }
    if params.is_empty() {
        name.to_string()
    } else {
        format!("{name}:{}", params.join(","))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn specs_round_trip_through_display_and_from_str(
        policy in prop::sample::select((0usize..5).collect::<Vec<_>>()),
        mask in prop::sample::select((0u8..64).collect::<Vec<_>>()),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        order in prop::sample::select(vec![false, true]),
    ) {
        let raw = spec_string(policy, mask, a, b, order);
        let spec: SchedulerSpec = raw.parse().unwrap_or_else(|e| panic!("'{raw}': {e}"));
        // Display -> FromStr is the identity on the parsed value...
        let redisplayed: SchedulerSpec = spec.to_string().parse().unwrap();
        prop_assert_eq!(&redisplayed, &spec);
        // ...and the canonical form is a fixed point of another round trip.
        prop_assert_eq!(redisplayed.to_string(), spec.to_string());
        // Parameter order in the input must not matter.
        let scrambled: SchedulerSpec = spec_string(policy, mask, a, b, !order).parse().unwrap();
        prop_assert_eq!(scrambled, spec);
    }
}

#[test]
fn unknown_policy_errors_name_the_alternatives() {
    let err = "fifo-magic".parse::<SchedulerSpec>().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("unknown scheduler policy 'fifo-magic'"),
        "{msg}"
    );
    for known in ["pdf", "ws", "static", "hybrid"] {
        assert!(msg.contains(known), "{msg} should list '{known}'");
    }
}

#[test]
fn unknown_and_malformed_parameter_errors_are_helpful() {
    let err = "pdf:window=4".parse::<SchedulerSpec>().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("'pdf' has no parameter 'window'"), "{msg}");
    assert!(msg.contains("lag"), "{msg} should list the known key");

    let err = "ws:victim".parse::<SchedulerSpec>().unwrap_err();
    assert!(err.to_string().contains("expected key=value"), "{err}");

    let err = "hybrid:threshold=-1".parse::<SchedulerSpec>().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("invalid value '-1'"), "{msg}");
    assert!(msg.contains("unsigned integer"), "{msg}");
}

/// A compute-only workload: on one core *every* greedy policy executes the
/// same total work with no cache effects, so each registered policy must
/// reproduce the sequential baseline's makespan exactly.
fn compute_only_dag() -> pdfws::task_dag::TaskDag {
    SpTree::Par(
        (0..32)
            .map(|i| SpTree::leaf(&format!("leaf{i}"), 2_000))
            .collect(),
    )
    .into_dag()
    .unwrap()
}

#[test]
fn every_registered_policy_matches_the_sequential_baseline_on_one_core() {
    let dag = compute_only_dag();
    let cfg = default_config(1).unwrap();
    let baseline = simulate_sequential(&dag, &cfg, &SimOptions::default());
    assert_eq!(
        baseline.scheduler,
        SchedulerSpec::sequential_baseline().to_string()
    );
    // Every built-in policy (pinned explicitly: the global registry is
    // mutable and another test in this binary registers a custom policy, so
    // iterating names() would make this test's scope order-dependent), plus
    // parameterized variants.
    for builtin in ["pdf", "ws", "static", "hybrid", "adaptive"] {
        assert!(
            Registry::global().names().contains(&builtin.to_string()),
            "built-in '{builtin}' missing from the registry"
        );
    }
    let specs: Vec<SchedulerSpec> = [
        "pdf",
        "ws",
        "static",
        "hybrid",
        "adaptive",
        "pdf:lag=1",
        "ws:victim=random,steal=half,seed=3",
        "ws:victim=hier,cluster=2",
        // On one core there is no victim to steal from, so even non-zero
        // prices must leave the sequential schedule untouched.
        "ws:steal_cycles=64,fail_backoff=128",
        "hybrid:threshold=1",
        "adaptive:threshold=1,window=512,step=2,lo=0.5,hi=4",
    ]
    .iter()
    .map(|n| n.parse().unwrap_or_else(|e| panic!("{n}: {e}")))
    .collect();
    for spec in specs {
        let r = simulate(&dag, &cfg, &spec, &SimOptions::default());
        assert_eq!(
            r.cycles, baseline.cycles,
            "{spec} diverged from the sequential baseline on one core"
        );
        assert_eq!(r.instructions, baseline.instructions, "{spec}");
    }
}

#[test]
fn experiments_distinguish_two_variants_of_the_same_policy() {
    let steal_one = SchedulerSpec::ws();
    let steal_half: SchedulerSpec = "ws:steal=half".parse().unwrap();
    let report = Experiment::new(MergeSort::new(1 << 12).into_spec())
        .cores(4)
        .schedulers(&[steal_one.clone(), steal_half.clone()])
        .run()
        .unwrap();
    assert_eq!(report.runs().len(), 2);
    let one = report.find(4, &steal_one).unwrap();
    let half = report.find(4, &steal_half).unwrap();
    // The report carries the full spec string for each cell.
    assert_eq!(one.metrics.scheduler, "ws");
    assert_eq!(half.metrics.scheduler, "ws:steal=half");
    // And the parameter is really live: coarser steals -> fewer steal events.
    assert!(
        half.metrics.migrations <= one.metrics.migrations,
        "steal=half should not out-steal steal=one: {} vs {}",
        half.metrics.migrations,
        one.metrics.migrations
    );
}

#[test]
fn custom_policies_register_and_run_through_the_experiment_api() {
    use pdfws::schedulers::{PolicyFactory, SchedulerPolicy};
    use pdfws::task_dag::{TaskDag, TaskId};

    /// A global FIFO queue: ready tasks run in the order they became ready.
    struct FifoPolicy {
        name: String,
        queue: std::collections::VecDeque<TaskId>,
    }
    impl SchedulerPolicy for FifoPolicy {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn init(&mut self, _dag: &TaskDag) {
            self.queue.clear();
        }
        fn task_ready(&mut self, task: TaskId, _enabling_core: Option<usize>) {
            self.queue.push_back(task);
        }
        fn next_task(&mut self, _core: usize) -> Option<TaskId> {
            self.queue.pop_front()
        }
        fn ready_count(&self) -> usize {
            self.queue.len()
        }
    }
    struct FifoFactory;
    impl PolicyFactory for FifoFactory {
        fn name(&self) -> &'static str {
            "test-fifo"
        }
        fn doc(&self) -> &'static str {
            "global FIFO queue (test policy)"
        }
        fn params(&self) -> &'static [ParamSpec] {
            &[]
        }
        fn build(&self, spec: &SchedulerSpec, _cores: usize) -> Box<dyn SchedulerPolicy> {
            Box::new(FifoPolicy {
                name: spec.canonical(),
                queue: std::collections::VecDeque::new(),
            })
        }
    }

    register(Arc::new(FifoFactory));
    let spec: SchedulerSpec = "test-fifo".parse().expect("registered name parses");
    let report = Experiment::new(ParallelScan::small().into_spec())
        .cores(2)
        .schedulers(std::slice::from_ref(&spec))
        .run()
        .unwrap();
    let run = report.find(2, &spec).unwrap();
    assert_eq!(run.metrics.scheduler, "test-fifo");
    assert!(run.metrics.cycles > 0);
}
