//! Golden-file and determinism coverage for the scheduler-zoo Pareto tuner
//! (`pdfws-bench`'s `tuner` module / binary).
//!
//! The quick tuner sweep — `quick_workloads()` × `TUNER_CORES` ×
//! `tuner_specs()` — must emit the exact `pareto.csv` bytes pinned under
//! `tests/golden/`, for every sweep thread count.  CI runs the `tuner` binary
//! with `--quick` and diffs its artifact against the same golden file.

use pdfws_bench::tuner::{
    pareto_csv, quick_workloads, rows_from_reports, tuner_specs, TUNER_CORES,
};
use pdfws_core::prelude::*;

/// The quick tuner sweep exactly as the binary's `--quick` path runs it.
fn quick_pareto_csv(threads: usize) -> String {
    let specs = tuner_specs();
    let grid = SweepGrid::new()
        .workloads(&quick_workloads())
        .cores(&[TUNER_CORES])
        .specs(&specs);
    let reports = SweepRunner::new(threads)
        .run(&grid)
        .expect("quick tuner grid runs")
        .into_reports();
    pareto_csv(&rows_from_reports(&reports, TUNER_CORES, &specs))
}

// Any change to the scheduler zoo, the engine's steal-cost accounting, or the
// tuner's objective/front computation shows up as a golden diff — regenerate
// with `UPDATE_GOLDEN=1 cargo test --test tuner_pareto` and review it.
#[test]
fn quick_pareto_front_matches_the_golden_file() {
    let csv = quick_pareto_csv(1);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tuner_pareto.csv");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &csv).expect("write golden pareto csv");
        return;
    }
    assert_eq!(
        csv,
        include_str!("golden/tuner_pareto.csv"),
        "tuner Pareto front changed (UPDATE_GOLDEN=1 to regenerate)"
    );
}

#[test]
fn pareto_csv_is_byte_identical_across_sweep_thread_counts() {
    let sequential = quick_pareto_csv(1);
    for threads in [2, 4] {
        assert_eq!(
            quick_pareto_csv(threads),
            sequential,
            "pareto.csv differs on {threads} sweep threads"
        );
    }
}

// Every workload must keep at least one spec on its front (the front of a
// non-empty set is non-empty), and the priced-steal spec must actually charge
// steal cycles somewhere in the sweep — the column is the tuner's visible
// evidence that `steal_cycles=N` reaches the engine.
#[test]
fn front_is_nonempty_and_priced_steals_are_charged() {
    let specs = tuner_specs();
    let grid = SweepGrid::new()
        .workloads(&quick_workloads())
        .cores(&[TUNER_CORES])
        .specs(&specs);
    let reports = SweepRunner::new(2)
        .run(&grid)
        .expect("quick tuner grid runs")
        .into_reports();
    let rows = rows_from_reports(&reports, TUNER_CORES, &specs);
    for workload in quick_workloads() {
        let name = workload.spec.canonical();
        assert!(
            rows.iter().any(|r| r.workload == name && r.pareto),
            "{name}: empty Pareto front"
        );
    }
    let priced: Vec<_> = rows
        .iter()
        .filter(|r| r.scheduler.contains("steal_cycles=64"))
        .collect();
    assert!(!priced.is_empty(), "priced spec missing from the sweep");
    assert!(
        priced.iter().any(|r| r.steal_cycles > 0),
        "priced stealing never charged a cycle across the quick sweep"
    );
    for r in &priced {
        assert_eq!(r.steal_cycles % 64, 0, "costs come in steal_cycles quanta");
    }
}
