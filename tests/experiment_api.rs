//! End-to-end tests of the public experiment API across crates.

use pdfws::prelude::*;

#[test]
fn sweep_over_the_paper_core_counts_completes_for_a_small_mergesort() {
    let report = Experiment::new(MergeSort::new(1 << 12).into_spec())
        .core_sweep(&[1, 2, 4, 8, 16, 32])
        .schedulers(&SchedulerSpec::paper_pair())
        .run()
        .expect("all default configurations exist");
    assert_eq!(report.runs().len(), 12);
    for run in report.runs() {
        assert!(run.metrics.cycles > 0);
        assert_eq!(run.metrics.tasks, report.runs()[0].metrics.tasks);
        assert_eq!(
            run.metrics.instructions,
            report.runs()[0].metrics.instructions
        );
        assert!(report.speedup(run) > 0.0);
        assert!(run.metrics.utilization() <= 1.0 + 1e-9);
    }
}

#[test]
fn every_workload_class_runs_under_every_scheduler() {
    let workloads: Vec<WorkloadInstance> = vec![
        MergeSort::small().into_spec(),
        QuickSort::small().into_spec(),
        MatMul::small().into_spec(),
        LuDecomposition::small().into_spec(),
        SpMv::small().into_spec(),
        HashJoin::small().into_spec(),
        ParallelScan::small().into_spec(),
        ComputeKernel::small().into_spec(),
        SyntheticTree::small().into_spec(),
    ];
    for spec in workloads {
        let tasks = spec.dag.len();
        let name = spec.name.clone();
        let report = Experiment::new(spec)
            .cores(4)
            .schedulers(&[
                SchedulerSpec::pdf(),
                SchedulerSpec::ws(),
                SchedulerSpec::static_partition(),
            ])
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for run in report.runs() {
            assert_eq!(run.metrics.tasks, tasks, "{name} under {}", run.scheduler);
            assert!(run.metrics.cycles > 0, "{name} under {}", run.scheduler);
        }
    }
}

#[test]
fn speedups_are_monotone_enough_for_an_embarrassingly_parallel_workload() {
    // The compute-bound kernel has negligible memory traffic, so speedup should
    // track core count closely for both schedulers.
    let report = Experiment::new(ComputeKernel::new(1 << 13).into_spec())
        .core_sweep(&[1, 2, 4, 8])
        .run()
        .unwrap();
    for spec in SchedulerSpec::paper_pair() {
        let mut prev = 0.0;
        for &cores in &[1usize, 2, 4, 8] {
            let s = report.speedup(report.find(cores, &spec).unwrap());
            assert!(s + 1e-9 >= prev, "{spec} at {cores} cores: {s} < {prev}");
            assert!(
                s > 0.8 * cores as f64 / 1.6,
                "{spec} at {cores} cores: speedup {s}"
            );
            prev = s;
        }
    }
}

#[test]
fn baseline_is_the_one_core_configuration() {
    let report = Experiment::new(ParallelScan::small().into_spec())
        .cores(4)
        .run()
        .unwrap();
    assert_eq!(report.baseline_config.cores, 1);
    assert_eq!(report.baseline.cores, 1);
    assert_eq!(report.baseline.scheduler, "pdf");
}

#[test]
fn deterministic_reports_for_identical_experiments() {
    let a = Experiment::new(SpMv::small().into_spec())
        .core_sweep(&[2, 4])
        .run()
        .unwrap();
    let b = Experiment::new(SpMv::small().into_spec())
        .core_sweep(&[2, 4])
        .run()
        .unwrap();
    assert_eq!(a.runs(), b.runs());
    assert_eq!(a.baseline, b.baseline);
}
