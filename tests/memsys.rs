//! Integration tests for the memory-system substrate's two load-bearing
//! guarantees:
//!
//! 1. **The legacy model is the component model's limiting case.**  An
//!    infinite-width bus in front of an infinite-bandwidth DRAM controller
//!    whose open-row hit and row-miss latencies are both pinned to the flat
//!    memory latency must reproduce the legacy serializing-channel completion
//!    times *exactly*, on every workload the registry knows.  This pins the
//!    refactor: the component model adds contention, it does not re-price
//!    uncontended misses.
//! 2. **Determinism across sweep parallelism.**  The discrete-event queue is
//!    ordered by `(time, sequence id)`, so a sweep's results are bit-identical
//!    whatever `--threads` value drives it.

use pdfws::cmp_model::MemSysParams;
use pdfws::prelude::*;
use pdfws::schedulers::simulate;
use pdfws::schedulers::SimOptions;
use proptest::prelude::*;

/// The infinite-capacity component configuration and its legacy counterpart,
/// both on an unbounded off-chip channel.
fn limiting_case_configs(cores: usize) -> (CmpConfig, CmpConfig) {
    let mut cfg = default_config(cores).expect("default configuration exists");
    cfg.offchip_bytes_per_cycle = f64::INFINITY;
    let mut legacy = cfg;
    legacy.memsys = MemSysParams::legacy();
    let mut pinned = cfg;
    pinned.memsys = MemSysParams {
        dram_hit_cycles: Some(cfg.memory_latency_cycles),
        dram_miss_cycles: Some(cfg.memory_latency_cycles),
        ..MemSysParams::bus_dram()
    };
    (legacy, pinned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Every registered workload (bare name = unit-test size), any scheduler
    // of the paper pair, several machine widths: the component model with
    // infinite capacity and flat latency completes in exactly the legacy
    // cycle count, with zero observed queuing.
    #[test]
    fn infinite_capacity_reproduces_legacy_on_every_registered_workload(
        workload_idx in 0usize..100,
        cores_idx in 0usize..3,
        sched_idx in 0usize..2,
    ) {
        let names = WorkloadRegistry::global().names();
        let name = &names[workload_idx % names.len()];
        let instance: WorkloadInstance =
            name.parse().expect("bare workload names instantiate");
        let cores = [2usize, 4, 8][cores_idx];
        let spec = if sched_idx == 0 { SchedulerSpec::pdf() } else { SchedulerSpec::ws() };
        let (legacy_cfg, pinned_cfg) = limiting_case_configs(cores);
        let legacy = simulate(&instance.dag, &legacy_cfg, &spec, &SimOptions::default());
        let pinned = simulate(&instance.dag, &pinned_cfg, &spec, &SimOptions::default());
        prop_assert_eq!(
            legacy.cycles, pinned.cycles,
            "{name} under {spec} at {cores} cores"
        );
        prop_assert_eq!(legacy.busy_cycles, pinned.busy_cycles);
        prop_assert_eq!(pinned.bus_queue_cycles, 0);
        prop_assert_eq!(pinned.dram_queue_cycles, 0);
        prop_assert_eq!(legacy.offchip_bytes(), pinned.offchip_bytes());
    }
}

#[test]
fn component_model_sweeps_are_bit_identical_across_thread_counts() {
    // A grid whose cells genuinely contend (a bandwidth-limited workload on a
    // narrow 2-bank machine) plus the default model: the event queue's
    // (time, id) ordering makes every cell a pure function of its inputs, so
    // the sweep must not depend on worker interleaving.
    let narrow: MemSysSpec = "bus:width=1,dram:banks=2".parse().unwrap();
    let grid = SweepGrid::new()
        .workload_str("spmv:rows=2048")
        .expect("spmv spec parses")
        .workload_str("mergesort:n=4096")
        .expect("mergesort spec parses")
        .cores(&[2, 8])
        .specs(&SchedulerSpec::paper_pair());
    for grid in [grid.clone(), grid.memsys(narrow)] {
        let sequential = SweepRunner::sequential().run(&grid).unwrap();
        for threads in [2usize, 4] {
            let parallel = SweepRunner::new(threads).run(&grid).unwrap();
            assert_eq!(
                parallel, sequential,
                "{threads} sweep threads changed component-model results"
            );
        }
    }
}

#[test]
fn memsys_spec_selects_the_model_end_to_end() {
    // The same experiment under the default component model and under
    // `--memsys legacy` must *disagree* on a contended workload (queuing is
    // real) while both remain self-consistent across reruns.
    let instance: WorkloadInstance = "spmv:rows=4096".parse().unwrap();
    let run = |memsys: Option<MemSysSpec>| {
        let mut experiment = Experiment::new(instance.clone())
            .cores(8)
            .schedulers(&[SchedulerSpec::pdf()]);
        if let Some(spec) = memsys {
            experiment = experiment.memsys(spec);
        }
        experiment.run().unwrap()
    };
    let component = run(None);
    let legacy = run(Some("legacy".parse().unwrap()));
    let component_run = component.find(8, &SchedulerSpec::pdf()).unwrap();
    let legacy_run = legacy.find(8, &SchedulerSpec::pdf()).unwrap();
    // Same schedule, same traffic; different costing of that traffic.
    assert_eq!(
        component_run.metrics.offchip_bytes(),
        legacy_run.metrics.offchip_bytes()
    );
    assert!(component_run.metrics.bus_queue_cycles > 0);
    assert_eq!(legacy_run.metrics.bus_queue_cycles, 0);
    assert_ne!(component_run.metrics.cycles, legacy_run.metrics.cycles);
}
