//! Free-steal equivalence battery for the priced-steal engine path.
//!
//! `steal_cycles=0,fail_backoff=0` must be *bit-identical* to the default
//! free-steal model: a zero price never arms a wake event, never shifts a
//! dispatch, never perturbs the victim scan.  The whole `SimResult` — cycles,
//! per-core busy vectors, cache-hierarchy counters, migrations — is compared,
//! not just the makespan, for every registered workload (small instance) ×
//! core count × deque-based policy family.

use pdfws::prelude::*;
use pdfws::schedulers::simulate;
use pdfws::task_dag::TaskDag;
use proptest::prelude::*;

/// A small instance of every registered workload.  The name list is asserted
/// against the global registry so adding a workload without extending this
/// battery fails loudly.
fn small_workloads() -> Vec<(&'static str, TaskDag)> {
    vec![
        ("compute-kernel", ComputeKernel::small().build_dag()),
        ("hashjoin", HashJoin::small().build_dag()),
        ("lu", LuDecomposition::small().build_dag()),
        ("matmul", MatMul::small().build_dag()),
        ("mergesort", MergeSort::small().build_dag()),
        ("quicksort", QuickSort::small().build_dag()),
        ("scan", ParallelScan::small().build_dag()),
        ("spmv", SpMv::small().build_dag()),
        ("synthetic", SyntheticTree::small().build_dag()),
    ]
}

#[test]
fn the_battery_covers_every_registered_workload() {
    let covered: Vec<&str> = small_workloads().iter().map(|(n, _)| *n).collect();
    assert_eq!(
        WorkloadRegistry::global().names(),
        covered,
        "extend small_workloads() in this file when registering a new workload"
    );
}

/// Simulate `spec` and blank the scheduler string: explicit-zero prices
/// legitimately canonicalise to a different spec string than the bare policy,
/// and the string is the one field allowed to differ.
fn run_normalized(dag: &TaskDag, cores: usize, spec: &str) -> SimResult {
    let cfg = default_config(cores).unwrap();
    let spec: SchedulerSpec = spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}"));
    let mut r = simulate(dag, &cfg, &spec, &SimOptions::default());
    r.scheduler = String::new();
    r
}

/// (free-steal spec, same spec with explicit zero prices) for every
/// deque-based policy family, including parameterized variants.
const ZERO_PRICE_PAIRS: &[(&str, &str)] = &[
    ("ws", "ws:steal_cycles=0,fail_backoff=0"),
    (
        "ws:steal=half",
        "ws:steal=half,steal_cycles=0,fail_backoff=0",
    ),
    (
        "ws:victim=random,seed=7",
        "ws:victim=random,seed=7,steal_cycles=0,fail_backoff=0",
    ),
    (
        "ws:victim=hier,cluster=2",
        "ws:victim=hier,cluster=2,steal_cycles=0,fail_backoff=0",
    ),
    ("hybrid", "hybrid:steal_cycles=0,fail_backoff=0"),
    (
        "hybrid:threshold=2",
        "hybrid:threshold=2,steal_cycles=0,fail_backoff=0",
    ),
    ("adaptive", "adaptive:steal_cycles=0,fail_backoff=0"),
];

// The exhaustive sweep: every registered workload × core count × policy pair.
// Exhaustive rather than sampled because the input space is small and the
// property is exact equality — there is nothing to shrink.
#[test]
fn zero_priced_stealing_is_bit_identical_to_the_free_steal_model() {
    for (name, dag) in small_workloads() {
        for cores in [2, 4, 8] {
            for (free, priced) in ZERO_PRICE_PAIRS {
                let a = run_normalized(&dag, cores, free);
                let b = run_normalized(&dag, cores, priced);
                assert_eq!(
                    a, b,
                    "{name} @ {cores} cores: '{priced}' diverged from '{free}'"
                );
                assert_eq!(a.steal_cycles, 0, "{name}: free steals charged cycles");
            }
        }
    }
}

// A non-zero price must actually be visible: at any core count where the free
// run migrates work, the priced run charges at least one quantum (and every
// charge is a multiple of the price).
#[test]
fn nonzero_steal_prices_are_charged_in_quanta() {
    let dag = MergeSort::small().build_dag();
    for cores in [2, 4, 8] {
        let free = run_normalized(&dag, cores, "ws");
        let priced = run_normalized(&dag, cores, "ws:steal_cycles=64");
        if free.migrations == 0 {
            continue;
        }
        assert!(
            priced.steal_cycles > 0,
            "{cores} cores: priced run charged nothing despite {} free-run steals",
            free.migrations
        );
        assert_eq!(
            priced.steal_cycles % 64,
            0,
            "charges come in 64-cycle quanta"
        );
        assert_eq!(
            priced.steal_cycles / 64,
            priced.migrations,
            "every migration must be charged exactly once"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The property behind the exhaustive table, fuzzed over the WS option
    // space: *any* ws variant with explicit zero prices equals its free-steal
    // twin on a fixed workload.
    #[test]
    fn any_zero_priced_ws_variant_matches_its_free_twin(
        victim in prop::sample::select(vec!["round-robin", "random", "nearest", "hier"]),
        steal in prop::sample::select(vec!["one", "half"]),
        seed in 0u64..100,
        cluster in 1u64..5,
        cores in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let mut params = vec![format!("victim={victim}"), format!("steal={steal}")];
        if victim == "random" {
            params.push(format!("seed={seed}"));
        }
        if victim == "hier" {
            params.push(format!("cluster={cluster}"));
        }
        let free = format!("ws:{}", params.join(","));
        let priced = format!("{free},steal_cycles=0,fail_backoff=0");
        let dag = ParallelScan::small().build_dag();
        let a = run_normalized(&dag, cores, &free);
        let b = run_normalized(&dag, cores, &priced);
        prop_assert_eq!(a, b, "'{}' diverged from '{}'", priced, free);
    }
}
