//! Cross-crate tests for the `WorkloadSpec` API: `FromStr`/`Display`
//! round-trips (property-tested), error reporting, spec-default parity with
//! the constructors, registry extension, and the canonical workload string's
//! journey through sweep reports and job-stream JSONL records.

use pdfws::prelude::*;
use pdfws::stream::{records_from_jsonl, run_stream_sim, StreamConfig};
use proptest::prelude::*;

/// Build a valid workload spec string from raw fuzz input.  `mask` selects
/// which optional parameters appear; `a`/`b` supply values; `order` scrambles
/// the parameter order (round-tripping must not depend on it).
fn spec_string(workload: usize, mask: u8, a: u64, b: u64, order: bool) -> String {
    let mut params: Vec<String> = Vec::new();
    let name = match workload % 5 {
        0 => {
            if mask & 1 != 0 {
                params.push(format!("n={}", (a % 4096).max(2)));
            }
            if mask & 2 != 0 {
                params.push(format!("grain={}", (b % 512).max(1)));
            }
            if mask & 4 != 0 {
                params.push(format!("leaf-instr={}", a % 40 + 1));
            }
            "mergesort"
        }
        1 => {
            if mask & 1 != 0 {
                params.push(format!("rows={}", (a % 2048).max(1)));
            }
            if mask & 2 != 0 {
                params.push(format!("nnz-per-row={}", b % 16 + 1));
            }
            if mask & 4 != 0 {
                params.push(format!("seed={a}"));
            }
            "spmv"
        }
        2 => {
            if mask & 1 != 0 {
                params.push(format!("depth={}", a % 6));
            }
            if mask & 2 != 0 {
                params.push(format!("fanout={}", b % 4 + 1));
            }
            if mask & 4 != 0 {
                // Limited to tenths so the decimal rendering is already canonical.
                params.push(format!("shared-fraction=0.{}", a % 10));
            }
            "synthetic"
        }
        3 => {
            if mask & 1 != 0 {
                // Power-of-two dimension, as the factory requires.
                params.push(format!("n={}", 1u64 << (a % 8 + 1)));
            }
            if mask & 2 != 0 {
                params.push(format!("coarse={}", b % 8 + 1));
            }
            "matmul"
        }
        _ => {
            if mask & 1 != 0 {
                params.push(format!("items={}", (a % 8192).max(1)));
            }
            if mask & 2 != 0 {
                params.push(format!("grain={}", (b % 1024).max(1)));
            }
            "compute-kernel"
        }
    };
    if order {
        params.reverse();
    }
    if params.is_empty() {
        name.to_string()
    } else {
        format!("{name}:{}", params.join(","))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn specs_round_trip_through_display_and_from_str(
        workload in prop::sample::select((0usize..5).collect::<Vec<_>>()),
        mask in prop::sample::select((0u8..8).collect::<Vec<_>>()),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        order in prop::sample::select(vec![false, true]),
    ) {
        let raw = spec_string(workload, mask, a, b, order);
        let spec: WorkloadSpec = raw.parse().unwrap_or_else(|e| panic!("'{raw}': {e}"));
        // Display -> FromStr is the identity on the parsed value...
        let redisplayed: WorkloadSpec = spec.to_string().parse().unwrap();
        prop_assert_eq!(&redisplayed, &spec);
        // ...and the canonical form is a fixed point of another round trip.
        prop_assert_eq!(redisplayed.to_string(), spec.to_string());
        // Parameter order in the input must not matter.
        let scrambled: WorkloadSpec = spec_string(workload, mask, a, b, !order).parse().unwrap();
        prop_assert_eq!(scrambled, spec);
    }
}

#[test]
fn every_registered_workloads_synthesized_spec_round_trips() {
    // The acceptance bar: for every registered workload, the canonical spec a
    // live instance reports parses back to an identical spec, and rebuilding
    // through the registry reproduces the same DAG.
    let instances: Vec<WorkloadInstance> = vec![
        MergeSort::small().into_instance(),
        MergeSort::new(1 << 13).into_instance(),
        MergeSort::new(1 << 13).coarse_grained(8).into_instance(),
        QuickSort::new(5_000).into_instance(),
        MatMul::new(64).into_instance(),
        MatMul::new(64).coarse_grained(4).into_instance(),
        LuDecomposition::new(128).into_instance(),
        SpMv::new(2048).into_instance(),
        HashJoin::new(1024).into_instance(),
        ParallelScan::new(1 << 14).into_instance(),
        ComputeKernel::new(1 << 13).into_instance(),
        SyntheticTree::small().into_instance(),
    ];
    for inst in instances {
        let canonical = inst.spec.canonical();
        let reparsed: WorkloadSpec = canonical
            .parse()
            .unwrap_or_else(|e| panic!("'{canonical}' does not re-parse: {e}"));
        assert_eq!(reparsed, inst.spec, "{canonical}");
        let rebuilt = WorkloadInstance::from_spec(&reparsed);
        assert_eq!(*rebuilt.dag, *inst.dag, "{canonical}: DAG differs");
        assert_eq!(rebuilt.class, inst.class, "{canonical}");
        assert_eq!(rebuilt.data_bytes, inst.data_bytes, "{canonical}");
    }
}

#[test]
fn spec_defaults_reproduce_the_constructor_sweep_exactly() {
    // `"mergesort:n=4096,grain=64"` and the equivalent constructor must yield
    // the *same sweep report* — same canonical workload string, same cells,
    // same metrics — so spec-driven and constructor-driven experiments are
    // interchangeable (the CI fig1 diff pins the same property end to end).
    let from_str = Experiment::for_spec("mergesort:n=4096,grain=64")
        .unwrap()
        .core_sweep(&[1, 4])
        .run()
        .unwrap();
    let from_ctor = Experiment::new(MergeSort::new(4096).with_grain(64).into_instance())
        .core_sweep(&[1, 4])
        .run()
        .unwrap();
    assert_eq!(from_str, from_ctor);
    assert_eq!(from_str.workload, "mergesort:grain=64,n=4096");
}

#[test]
fn unknown_workload_and_parameter_errors_are_helpful() {
    let err = "quantum-sort".parse::<WorkloadSpec>().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown workload 'quantum-sort'"), "{msg}");
    for known in ["mergesort", "spmv", "synthetic", "compute-kernel"] {
        assert!(msg.contains(known), "{msg} should list '{known}'");
    }

    let err = "spmv:cols=4".parse::<WorkloadSpec>().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("workload 'spmv' has no parameter 'cols'"),
        "{msg}"
    );
    assert!(msg.contains("rows"), "{msg} should list the known key");

    let err = "mergesort:n".parse::<WorkloadSpec>().unwrap_err();
    assert!(err.to_string().contains("expected key=value"), "{err}");

    let err = "scan:n=-1".parse::<WorkloadSpec>().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("invalid value '-1'"), "{msg}");
    assert!(msg.contains("unsigned integer"), "{msg}");

    // Structural constraints surface at parse time, not as build panics.
    let err = "matmul:n=100".parse::<WorkloadSpec>().unwrap_err();
    assert!(err.to_string().contains("power of two"), "{err}");
}

#[test]
fn sweep_grids_accept_workload_spec_strings() {
    let sweep = SweepRunner::sequential()
        .run(
            &SweepGrid::new()
                .workload_str("mergesort")
                .unwrap()
                .workload_str("scan:n=2048")
                .unwrap()
                .cores(&[2])
                .specs(&[SchedulerSpec::pdf()]),
        )
        .unwrap();
    let names: Vec<&str> = sweep
        .reports()
        .iter()
        .map(|r| r.workload.as_str())
        .collect();
    assert_eq!(names, ["mergesort", "scan:n=2048"]);
    // Name-part lookup finds parameterized reports too.
    assert!(sweep.for_workload("scan").is_some());
    let err = SweepGrid::new().workload_str("nope").unwrap_err();
    assert!(matches!(err, ExperimentError::Workload(_)), "{err}");
    assert!(err.to_string().contains("unknown workload"), "{err}");

    // An exact match wins over an earlier base-name match regardless of order.
    let sweep = SweepRunner::sequential()
        .run(
            &SweepGrid::new()
                .workload_str("mergesort:n=512")
                .unwrap()
                .workload_str("mergesort")
                .unwrap()
                .cores(&[2])
                .specs(&[SchedulerSpec::pdf()]),
        )
        .unwrap();
    assert_eq!(
        sweep.for_workload("mergesort").unwrap().workload,
        "mergesort"
    );
    assert_eq!(
        sweep.for_workload("mergesort:n=512").unwrap().workload,
        "mergesort:n=512"
    );
}

#[test]
fn job_records_preserve_the_canonical_workload_string_through_jsonl() {
    let mix = JobMix::from_specs("sorts", &[("mergesort:n=512", 1), ("spmv:rows=128", 1)]).unwrap();
    let mut cfg = StreamConfig::new(4, SchedulerSpec::pdf());
    cfg.quantum_cycles = 8_000;
    let outcome = run_stream_sim(&mix, 6, &cfg).unwrap();
    let jsonl = outcome.to_jsonl();
    assert_eq!(jsonl.lines().count(), 6);
    let parsed = records_from_jsonl(&jsonl).expect("records parse back");
    assert_eq!(parsed, outcome.records);
    for (orig, back) in outcome.records.iter().zip(&parsed) {
        assert_eq!(
            back.workload, orig.workload,
            "workload spec must survive the JSONL round trip"
        );
        // The per-job spec carries the sampled scale and seed, so it rebuilds
        // the exact job DAG.
        let again: WorkloadSpec = back.workload.canonical().parse().unwrap();
        assert_eq!(again, back.workload);
    }
    // Both spec axes travel as canonical strings in the same record.
    let line = jsonl.lines().next().unwrap();
    assert!(line.contains("\"workload\":\""), "{line}");
    assert!(line.contains("\"scheduler\":\"pdf\""), "{line}");
}

#[test]
fn custom_workloads_register_and_run_through_the_experiment_api() {
    use pdfws::task_dag::builder::SpTree;
    use pdfws::task_dag::TaskDag;
    use std::sync::Arc;

    /// A flat fork-join of `width` equal leaves.
    struct FlatPar {
        width: u64,
    }
    impl Workload for FlatPar {
        fn name(&self) -> &'static str {
            "test-flatpar"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::ComputeBound
        }
        fn build_dag(&self) -> TaskDag {
            SpTree::Par(
                (0..self.width)
                    .map(|i| SpTree::leaf(&format!("leaf{i}"), 1_000))
                    .collect(),
            )
            .into_dag()
            .unwrap()
        }
        fn data_bytes(&self) -> u64 {
            64
        }
    }
    struct FlatParFactory;
    impl WorkloadFactory for FlatParFactory {
        fn name(&self) -> &'static str {
            "test-flatpar"
        }
        fn doc(&self) -> &'static str {
            "flat fork-join (test workload)"
        }
        fn params(&self) -> &'static [ParamSpec] {
            &[ParamSpec {
                key: "width",
                kind: ParamKind::U64,
                doc: "parallel leaves",
            }]
        }
        fn build(&self, spec: &WorkloadSpec) -> Box<dyn Workload> {
            Box::new(FlatPar {
                width: spec.u64_param("width", 8),
            })
        }
    }

    register_workload(Arc::new(FlatParFactory));
    let report = Experiment::for_spec("test-flatpar:width=16")
        .expect("registered name parses")
        .cores(2)
        .schedulers(&[SchedulerSpec::pdf()])
        .run()
        .unwrap();
    assert_eq!(report.workload, "test-flatpar:width=16");
    let run = report.find(2, &SchedulerSpec::pdf()).unwrap();
    assert_eq!(run.metrics.tasks, 16 + 2, "fork + 16 leaves + join");
    // The custom name also serves job streams.
    let mix = JobMix::from_specs("custom", &[("test-flatpar:width=4", 1)]).unwrap();
    let mut cfg = StreamConfig::new(2, SchedulerSpec::ws());
    cfg.quantum_cycles = 8_000;
    let outcome = run_stream_sim(&mix, 3, &cfg).unwrap();
    assert_eq!(outcome.records.len(), 3);
    assert!(outcome
        .records
        .iter()
        .all(|r| r.workload.name() == "test-flatpar"));
}
