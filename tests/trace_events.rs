//! Determinism tests for the tracing layer: the exported Perfetto JSON of a
//! fixed cell is pinned byte-for-byte as a golden file, is byte-identical for
//! every `SweepRunner` thread count, and a property test checks that every
//! traced run's event stream is monotone non-decreasing in time per core.

use pdfws::prelude::*;
use pdfws::schedulers::simulate_traced;
use pdfws::trace::{chrome_trace_json, TraceEvent, TraceTrack};
use pdfws_cmp_model::default_config;
use pdfws_core::sweep::SweepRunner;
use proptest::prelude::*;

const GOLDEN_CORES: usize = 4;

/// The fixed cell the golden file pins: a small merge sort under the paper
/// pair at 4 cores, one process track per scheduler.
fn golden_trace_json(threads: usize) -> String {
    let workload = WorkloadInstance::from_spec(&"mergesort:n=4096".parse().unwrap());
    let config = default_config(GOLDEN_CORES).expect("default configuration");
    let specs = SchedulerSpec::paper_pair();
    let options = SimOptions::default();
    let cells: Vec<(SimResult, Vec<TraceEvent>)> = SweepRunner::new(threads)
        .run_cells(specs.len(), |i| {
            simulate_traced(&workload.dag, &config, &specs[i], &options)
        });
    let tracks: Vec<TraceTrack> = specs
        .iter()
        .zip(&cells)
        .enumerate()
        .map(|(i, (spec, (_, events)))| {
            TraceTrack::new(
                (i + 1) as u64,
                format!("{spec} · mergesort:n=4096 @ {GOLDEN_CORES} cores"),
                GOLDEN_CORES,
                events.clone(),
            )
        })
        .collect();
    chrome_trace_json(&tracks)
}

// Any change to the simulator's event stream *or* to the exporter's
// formatting shows up as a golden diff — regenerate with
// `UPDATE_GOLDEN=1 cargo test --test trace_events` and review it.
#[test]
fn perfetto_export_matches_the_golden_file() {
    let json = golden_trace_json(1);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/small_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden trace");
        return;
    }
    assert_eq!(
        json,
        include_str!("golden/small_trace.json"),
        "Perfetto export of the golden cell changed (UPDATE_GOLDEN=1 to regenerate)"
    );
}

#[test]
fn perfetto_export_is_byte_identical_across_sweep_thread_counts() {
    let sequential = golden_trace_json(1);
    for threads in [2, 4] {
        assert_eq!(
            golden_trace_json(threads),
            sequential,
            "trace JSON differs on {threads} sweep threads"
        );
    }
}

// The engine keeps `set_trace_cache_window` meaningful off the exact path:
// sampled runs scale the sampled-set counters back up and analytic runs
// report the pro-rata credited misses, so windowed `CacheWindow` events never
// silently flatline when a statistical cache mode is selected.
#[test]
fn cache_windows_carry_synthesized_counters_in_statistical_modes() {
    let workload = WorkloadInstance::from_spec(&"mergesort:n=65536".parse().unwrap());
    let config = default_config(GOLDEN_CORES).expect("default configuration");
    for mode in ["sampled:rate=8", "analytic"] {
        let options = SimOptions {
            cache_mode: mode.parse().unwrap(),
            ..SimOptions::default()
        };
        let (result, events) =
            simulate_traced(&workload.dag, &config, &SchedulerSpec::pdf(), &options);
        let windows: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CacheWindow {
                    accesses,
                    l1_misses,
                    ..
                } => Some((*accesses, *l1_misses)),
                _ => None,
            })
            .collect();
        assert!(
            windows.len() > 1,
            "{mode}: expected several CacheWindow samples"
        );
        let accesses: u64 = windows.iter().map(|w| w.0).sum();
        let l1_misses: u64 = windows.iter().map(|w| w.1).sum();
        assert!(accesses > 0, "{mode}: windows report no memory accesses");
        assert!(
            l1_misses > 0,
            "{mode}: windows report no synthesized misses"
        );
        // Window deltas are cumulative-counter differences, so their sum can
        // never exceed the run's end-of-run statistics.
        assert!(
            l1_misses <= result.hierarchy.l1.iter().map(|c| c.misses()).sum::<u64>(),
            "{mode}: window misses exceed the run total"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Every traced run's timestamps are monotone non-decreasing overall (the
    // engine stamps events as it advances its clock) and hence per core.
    #[test]
    fn traced_event_times_are_monotone_per_core(
        n in 256u64..2048,
        cores in prop::sample::select(vec![1usize, 2, 4, 8]),
        spec in prop::sample::select(vec!["pdf", "ws", "hybrid", "static"]),
    ) {
        let workload = WorkloadInstance::from_spec(
            &format!("mergesort:n={n}").parse().unwrap(),
        );
        let config = default_config(cores).expect("default configuration");
        let (_, events) = simulate_traced(
            &workload.dag,
            &config,
            &spec.parse().unwrap(),
            &SimOptions::default(),
        );
        prop_assert!(!events.is_empty());
        let mut last_per_core = vec![0u64; cores];
        for event in &events {
            if let Some(core) = event.core() {
                prop_assert!(core < cores, "event names core {core} of {cores}");
                prop_assert!(
                    event.time() >= last_per_core[core],
                    "timestamps regress on core {core}: {} after {}",
                    event.time(),
                    last_per_core[core],
                );
                last_per_core[core] = event.time();
            }
        }
    }
}
