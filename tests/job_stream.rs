//! Cross-crate integration tests for the job-stream subsystem, through the
//! umbrella crate's public API.

use pdfws::prelude::*;
use pdfws::stream::{
    records_from_jsonl, run_stream_sim, run_stream_threads, StreamConfig, ThreadStreamConfig,
};

#[test]
fn same_seed_reproduces_admission_order_and_sojourn_times() {
    let mix = JobMix::mixed();
    for spec in SchedulerSpec::paper_pair() {
        let mut cfg = StreamConfig::new(4, spec.clone());
        cfg.quantum_cycles = 8_000;
        cfg.arrivals = ArrivalProcess::OpenLoopPoisson {
            jobs_per_mcycle: 80.0,
            seed: 21,
        };
        let a = run_stream_sim(&mix, 10, &cfg).unwrap();
        let b = run_stream_sim(&mix, 10, &cfg).unwrap();
        assert_eq!(a.admission_order, b.admission_order, "{spec}");
        let sojourns_a: Vec<u64> = a.records.iter().map(|r| r.sojourn_cycles).collect();
        let sojourns_b: Vec<u64> = b.records.iter().map(|r| r.sojourn_cycles).collect();
        assert_eq!(sojourns_a, sojourns_b, "{spec}");
        assert_eq!(a, b, "{spec}: full outcomes must be bit-identical");
    }
}

#[test]
fn different_seeds_change_the_stream() {
    let mix = JobMix::class_a();
    let mut cfg = StreamConfig::new(4, SchedulerSpec::pdf());
    cfg.quantum_cycles = 8_000;
    let a = run_stream_sim(&mix, 8, &cfg).unwrap();
    cfg.seed += 1;
    let b = run_stream_sim(&mix, 8, &cfg).unwrap();
    assert_ne!(a, b);
}

#[test]
fn closed_loop_concurrency_never_exceeds_the_population() {
    let mix = JobMix::mixed();
    for population in [1usize, 2, 3] {
        let mut cfg = StreamConfig::new(4, SchedulerSpec::ws());
        cfg.quantum_cycles = 8_000;
        cfg.max_concurrent = 8; // slots must not be what bounds concurrency here
        cfg.arrivals = ArrivalProcess::ClosedLoop {
            population,
            think_cycles: 300,
        };
        let outcome = run_stream_sim(&mix, 7, &cfg).unwrap();
        assert_eq!(outcome.records.len(), 7);
        assert!(
            outcome.peak_concurrency <= population,
            "population {population} but peak concurrency {}",
            outcome.peak_concurrency
        );
    }
}

#[test]
fn open_loop_respects_the_slot_limit() {
    let mix = JobMix::class_b();
    let mut cfg = StreamConfig::new(4, SchedulerSpec::pdf());
    cfg.quantum_cycles = 8_000;
    cfg.max_concurrent = 2;
    cfg.arrivals = ArrivalProcess::OpenLoopUniform {
        interarrival_cycles: 0, // everything arrives at once
    };
    let outcome = run_stream_sim(&mix, 9, &cfg).unwrap();
    assert_eq!(outcome.records.len(), 9);
    assert!(outcome.peak_concurrency <= 2);
    // With an instantaneous backlog, later jobs must have queued.
    assert!(outcome.records.iter().any(|r| r.queue_cycles > 0));
}

#[test]
fn stream_experiment_compares_the_paper_pair() {
    let report = StreamExperiment::new(JobMix::class_a())
        .jobs(8)
        .cores(4)
        .quantum_cycles(8_000)
        .arrivals(ArrivalProcess::OpenLoopPoisson {
            jobs_per_mcycle: 60.0,
            seed: 5,
        })
        .run()
        .unwrap();
    let pdf = report.summary(&SchedulerSpec::pdf()).unwrap();
    let ws = report.summary(&SchedulerSpec::ws()).unwrap();
    assert_eq!(pdf.jobs, 8);
    assert_eq!(ws.jobs, 8);
    assert!(pdf.sojourn.p99 >= pdf.sojourn.p50);
    assert!(pdf.jobs_per_mcycle > 0.0);
    assert!(pdf.mean_l2_mpki >= 0.0);
    assert!(report.ws_over_pdf_p95().unwrap() > 0.0);
}

#[test]
fn admission_policies_change_the_order_not_the_job_set() {
    let mix = JobMix::mixed();
    let mut outcomes = Vec::new();
    for policy in [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::ShortestJobFirst,
        AdmissionPolicy::FairShare,
    ] {
        let mut cfg = StreamConfig::new(4, SchedulerSpec::pdf());
        cfg.quantum_cycles = 8_000;
        cfg.max_concurrent = 1;
        cfg.admission = policy;
        cfg.arrivals = ArrivalProcess::OpenLoopUniform {
            interarrival_cycles: 0,
        };
        let outcome = run_stream_sim(&mix, 8, &cfg).unwrap();
        let mut ids: Vec<u64> = outcome.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..8).collect::<Vec<_>>(), "{policy}");
        outcomes.push(outcome.admission_order);
    }
    assert_ne!(outcomes[0], outcomes[1], "SJF should reorder a backlog");
}

#[test]
fn parameterized_specs_drive_the_stream_and_round_trip_through_jsonl() {
    // A parameterized spec must thread through the whole stream path: config ->
    // per-job engines -> records -> JSONL -> parsed records, arriving back as
    // an *identical* spec (not a lossy short name).
    let spec: SchedulerSpec = "ws:victim=random,seed=7".parse().unwrap();
    let mix = JobMix::class_b();
    let mut cfg = StreamConfig::new(4, spec.clone());
    cfg.quantum_cycles = 8_000;
    let outcome = run_stream_sim(&mix, 6, &cfg).unwrap();
    assert_eq!(outcome.scheduler, spec);
    for r in &outcome.records {
        assert_eq!(r.scheduler, spec, "job {} lost its spec", r.id);
    }
    let jsonl = outcome.to_jsonl();
    assert_eq!(jsonl.lines().count(), 6);
    assert!(
        jsonl.contains("\"scheduler\":\"ws:seed=7,victim=random\""),
        "records must carry the canonical spec string: {jsonl}"
    );
    let parsed = records_from_jsonl(&jsonl).expect("records parse back");
    assert_eq!(parsed, outcome.records);
    assert_eq!(
        parsed[0].scheduler, spec,
        "spec must round-trip identically"
    );
}

#[test]
fn tenant_and_slo_class_thread_through_records_and_jsonl() {
    // Every sampled job carries its tenant (mix-entry index) and that
    // tenant's SLO class, and both survive the JSONL round trip — the
    // serving tier's per-tenant attribution rides on these fields.
    let mix = JobMix::class_a().with_slo_classes(&["latency", "latency", "batch"]);
    let mut cfg = StreamConfig::new(4, SchedulerSpec::pdf());
    cfg.quantum_cycles = 8_000;
    let outcome = run_stream_sim(&mix, 12, &cfg).unwrap();
    for r in &outcome.records {
        assert!((r.tenant as usize) < mix.tenants(), "job {}", r.id);
        assert_eq!(
            r.slo_class,
            mix.slo_classes()[r.tenant as usize],
            "job {} must carry its tenant's SLO class",
            r.id
        );
    }
    assert!(outcome.records.iter().any(|r| r.slo_class == "latency"));
    let jsonl = outcome.to_jsonl();
    assert!(jsonl.contains("\"tenant\":"), "records must name a tenant");
    assert!(jsonl.contains("\"slo_class\":\"latency\""));
    let parsed = records_from_jsonl(&jsonl).expect("records parse back");
    assert_eq!(parsed, outcome.records);
}

#[test]
fn hybrid_and_lagged_pdf_serve_streams_end_to_end() {
    // The new registered policies are first-class citizens of the stream
    // subsystem, not just the single-DAG simulator.
    let mix = JobMix::class_b();
    for spec in ["hybrid:threshold=2", "pdf:lag=8"] {
        let spec: SchedulerSpec = spec.parse().unwrap();
        let mut cfg = StreamConfig::new(4, spec.clone());
        cfg.quantum_cycles = 8_000;
        let outcome = run_stream_sim(&mix, 5, &cfg).unwrap();
        assert_eq!(outcome.records.len(), 5, "{spec}");
        assert!(outcome.summary().sojourn.p99 > 0.0, "{spec}");
    }
}

#[test]
fn thread_backend_serves_the_stream_on_both_pools() {
    let mix = JobMix::class_b();
    for spec in SchedulerSpec::paper_pair() {
        let mut cfg = ThreadStreamConfig::new(2, spec.clone());
        cfg.ns_per_kinstr = 5;
        let outcome = run_stream_threads(&mix, 5, &cfg).unwrap();
        assert_eq!(outcome.records.len(), 5, "{spec}");
        assert!(outcome.sojourn_micros().p99 > 0.0);
    }
}
