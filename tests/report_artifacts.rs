//! Artifact round-trip tests for `pdfws-report`: golden-file stability of the
//! CSV/markdown renderers, byte-identical artifacts for every sweep thread
//! count (reusing the sweep determinism harness), a property test that
//! `Figure` CSV emission re-parses to the same series, and an end-to-end
//! replication-suite smoke over a real (small) simulation.

use pdfws::prelude::*;
use pdfws::report::{
    ArtifactSet, Claim, Evaluation, Expectation, Figure, Observation, ReplicationSuite, SuiteConfig,
};
use proptest::prelude::*;

/// One small, fully deterministic sweep (the unit-test merge sort on 1 and 2
/// cores under the paper pair), run on `threads` workers.
fn small_report(threads: usize) -> ExperimentReport {
    let grid = SweepGrid::new()
        .workload_str("mergesort:n=4096")
        .expect("registered workload")
        .cores(&[1, 2])
        .specs(&SchedulerSpec::paper_pair());
    SweepRunner::new(threads)
        .run(&grid)
        .expect("valid grid")
        .into_reports()
        .swap_remove(0)
}

fn small_figures(threads: usize) -> (Figure, Figure) {
    let report = small_report(threads);
    let pair = SchedulerSpec::paper_pair();
    (
        Figure::new(
            "small-mpki",
            "small mpki",
            report.mpki_table(&[1, 2], &pair),
        ),
        Figure::new(
            "small-speedup",
            "small speedup",
            report.speedup_table(&[1, 2], &pair),
        ),
    )
}

// --- Golden files ---------------------------------------------------------
//
// The rendered bytes of a fixed simulation are pinned verbatim: any change to
// the simulator's numbers *or* to the renderers' formatting shows up as a
// golden diff, the same way CI pins `replicate --quick`'s claim-status column.

#[test]
fn csv_rendering_matches_the_golden_file() {
    let (mpki, _) = small_figures(1);
    assert_eq!(
        mpki.to_csv(),
        include_str!("golden/small_mpki.csv"),
        "CSV rendering of the golden sweep changed"
    );
}

#[test]
fn markdown_rendering_matches_the_golden_file() {
    let (mpki, _) = small_figures(1);
    assert_eq!(
        mpki.to_markdown(),
        include_str!("golden/small_mpki.md"),
        "markdown rendering of the golden sweep changed"
    );
}

// --- Determinism across thread counts -------------------------------------

#[test]
fn artifacts_are_byte_stable_across_thread_counts() {
    let (mpki_1, speedup_1) = small_figures(1);
    for threads in [2, 4] {
        let (mpki_n, speedup_n) = small_figures(threads);
        assert_eq!(
            mpki_n.to_csv(),
            mpki_1.to_csv(),
            "{threads} threads changed the CSV"
        );
        assert_eq!(mpki_n.to_markdown(), mpki_1.to_markdown());
        assert_eq!(mpki_n.to_jsonl(), mpki_1.to_jsonl());
        assert_eq!(speedup_n.to_csv(), speedup_1.to_csv());
        assert_eq!(speedup_n.ascii_chart(), speedup_1.ascii_chart());
    }
}

// --- Figure CSV round-trip property ----------------------------------------

/// Series/axis labels of the shapes real tables carry — including the
/// comma-bearing workload spec strings that force RFC 4180 quoting, and
/// embedded quotes.
fn label_strategy() -> impl Strategy<Value = String> {
    (0u64..26, 0u64..6, 0u64..10_000).prop_map(|(letter, punct, n)| {
        let c = (b'a' + letter as u8) as char;
        let p = [":", "=", "-", "_", ",", "\""][punct as usize];
        format!("{c}{p}{n}")
    })
}

/// Finite values of several shapes; `f64` Display is shortest-round-trip, so
/// emission must re-parse to bit-identical series.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        // Large integers (cycle counts, byte totals).
        (0u64..u64::MAX).prop_map(|n| n as f64),
        // Signed fractions with a long decimal tail (ratios, MPKI).
        (0u64..2_000_000_000).prop_map(|n| n as f64 / 999_983.0 - 1_000.0),
        // Exact zeros and small integers.
        (0u64..5).prop_map(|n| n as f64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn figure_csv_emission_reparses_to_the_same_series(
        x_name in label_strategy(),
        rows in 1usize..6,
        names in prop::collection::vec(label_strategy(), 1..4),
        seed_values in prop::collection::vec(value_strategy(), 24..25),
    ) {
        let x_values: Vec<String> = (0..rows).map(|i| format!("x{i}")).collect();
        let mut table = pdfws::metrics::Table::new("prop figure", x_name, x_values);
        for (i, name) in names.iter().enumerate() {
            // Distinct column names (duplicates are legal CSV but ambiguous).
            let values: Vec<f64> = (0..rows).map(|r| seed_values[(i * rows + r) % seed_values.len()]).collect();
            table.push_series(pdfws::metrics::Series::new(format!("{name}{i}"), values));
        }
        let figure = Figure::new("prop-fig", "prop figure", table);
        let back = Figure::from_csv(&figure.id, &figure.caption, &figure.to_csv()).unwrap();
        prop_assert_eq!(&back.table.x_values, &figure.table.x_values);
        prop_assert_eq!(&back.table.series, &figure.table.series);
        prop_assert_eq!(&back.table.x_name, &figure.table.x_name);
    }
}

// --- End-to-end replication smoke ------------------------------------------

#[test]
fn replication_suite_runs_a_real_claim_end_to_end() {
    let mut suite = ReplicationSuite::new();
    suite.push(Claim::new(
        "smoke-mpki",
        "unit-scale merge sort: PDF MPKI is no worse than WS at 2 cores",
        "c1-constructive-cache-sharing-cuts-l2-misses",
        Expectation::at_most("l2_mpki(pdf)", "l2_mpki(ws)", 0.05),
        |ctx| {
            let reports = ctx.sweep(&["mergesort:n=4096"], &[1, 2], &["pdf", "ws"])?;
            let report = &reports[0];
            let mpki = |spec: &SchedulerSpec| {
                report
                    .find(2, spec)
                    .expect("cell simulated")
                    .metrics
                    .l2_mpki()
            };
            Ok(Evaluation {
                observation: Observation {
                    lhs: mpki(&SchedulerSpec::pdf()),
                    rhs: mpki(&SchedulerSpec::ws()),
                },
                workloads: vec!["mergesort:n=4096".into()],
                schedulers: vec!["pdf".into(), "ws".into()],
                cores: vec![1, 2],
                figures: vec![Figure::new(
                    "smoke-mpki",
                    "smoke mpki",
                    report.mpki_table(&[1, 2], &SchedulerSpec::paper_pair()),
                )],
                raw: Vec::new(),
            })
        },
    ));
    let report = suite
        .run(SuiteConfig::new(true).threads(2), |_| {})
        .unwrap();
    assert_eq!(report.results.len(), 1);

    // The generated REPLICATION.md maps the claim to its PAPER.md anchor and
    // carries the exact reproduction specs.
    let md = report.to_markdown();
    assert!(
        md.contains("PAPER.md#c1-constructive-cache-sharing-cuts-l2-misses"),
        "{md}"
    );
    assert!(md.contains("`mergesort:n=4096`"), "{md}");
    assert!(md.contains("--claim smoke-mpki"), "{md}");

    // The artifact tree materialises and reads back.
    let artifacts: ArtifactSet = report.artifacts();
    let root = std::env::temp_dir().join(format!("pdfws-replication-smoke-{}", std::process::id()));
    let written = artifacts.write_to(&root).unwrap();
    assert_eq!(written.len(), artifacts.len());
    let on_disk = std::fs::read_to_string(root.join("REPLICATION.md")).unwrap();
    assert_eq!(on_disk, md);
    assert!(root.join("claims/smoke-mpki/smoke-mpki.csv").is_file());
    std::fs::remove_dir_all(&root).unwrap();

    // Suite threading is bit-identical too: sequential run, same artifacts.
    let seq = suite.run(SuiteConfig::new(true), |_| {}).unwrap();
    assert_eq!(seq.artifacts(), artifacts);
}

/// The paper suite's anchors must all resolve to headings that exist in
/// PAPER.md — a broken anchor would make REPLICATION.md link nowhere.
#[test]
fn paper_suite_anchors_exist_in_paper_md() {
    let paper = include_str!("../PAPER.md");
    let anchors: Vec<String> = paper
        .lines()
        .filter_map(|l| l.strip_prefix("### "))
        .map(|heading| {
            // GitHub-style slug: lowercase, alphanumerics kept, spaces to
            // dashes, punctuation dropped.
            let mut slug = String::new();
            for c in heading.chars() {
                if c.is_ascii_alphanumeric() {
                    slug.push(c.to_ascii_lowercase());
                } else if c == ' ' || c == '-' {
                    slug.push('-');
                }
            }
            slug
        })
        .collect();
    let suite = ReplicationSuite::paper();
    assert_eq!(suite.claims().len(), 8);
    for claim in suite.claims() {
        assert!(
            anchors.iter().any(|a| a == &claim.anchor),
            "claim '{}' anchors to missing PAPER.md heading '{}' (have: {anchors:?})",
            claim.id,
            claim.anchor
        );
    }
}
