//! Cross-crate accuracy contract of the cache-mode axis.
//!
//! `cache=sampled:rate=N` and `cache=analytic` are statistical estimators of
//! the exact per-access simulation, and their declared accuracy contract
//! (`MPKI_TOLERANCE_SAMPLED` / `MPKI_TOLERANCE_ANALYTIC` relative plus
//! `MPKI_SLACK_ABS` absolute, on L2 MPKI) is pinned here against *every*
//! registered workload under both paper schedulers.  `cache=exact` is not an
//! estimator at all: an explicit `exact` spec must reproduce the default path
//! bit for bit.

use pdfws::cache_sim::{MPKI_SLACK_ABS, MPKI_TOLERANCE_ANALYTIC, MPKI_TOLERANCE_SAMPLED};
use pdfws::prelude::*;
use pdfws::schedulers::simulate;
use proptest::prelude::*;

fn options_for(mode: &str) -> SimOptions {
    SimOptions {
        cache_mode: mode.parse().unwrap_or_else(|e| panic!("'{mode}': {e}")),
        ..SimOptions::default()
    }
}

/// |observed − exact| ≤ tolerance·exact + slack, the contract the constants
/// in `pdfws-cache-sim` declare.
fn assert_mpki_within(label: &str, exact: f64, observed: f64, tolerance: f64) {
    let budget = tolerance * exact + MPKI_SLACK_ABS;
    assert!(
        (observed - exact).abs() <= budget,
        "{label}: L2 MPKI {observed:.3} vs exact {exact:.3} exceeds {tolerance:.0}% + {MPKI_SLACK_ABS} slack"
    );
}

#[test]
fn statistical_modes_honor_their_mpki_contract_on_every_registered_workload() {
    let config = default_config(4).expect("default configuration");
    // Every registered workload at its registry defaults, plus scaled
    // instances of the two paper staples big enough to actually miss in L2 —
    // the defaults are unit-test sized and mostly cache-resident, which would
    // let a broken estimator pass on slack alone.
    let mut specs: Vec<String> = WorkloadRegistry::global().names();
    specs.push("mergesort:n=65536".into());
    specs.push("spmv:rows=4096,iterations=1".into());
    for wspec in specs {
        let instance = WorkloadInstance::from_spec(&wspec.parse().unwrap());
        for sched in ["pdf", "ws"] {
            let spec: SchedulerSpec = sched.parse().unwrap();
            let exact = simulate(&instance.dag, &config, &spec, &options_for("exact"));
            let sampled = simulate(
                &instance.dag,
                &config,
                &spec,
                &options_for("sampled:rate=8"),
            );
            let analytic = simulate(&instance.dag, &config, &spec, &options_for("analytic"));
            assert_mpki_within(
                &format!("{wspec} × {sched} (sampled)"),
                exact.l2_mpki(),
                sampled.l2_mpki(),
                MPKI_TOLERANCE_SAMPLED,
            );
            assert_mpki_within(
                &format!("{wspec} × {sched} (analytic)"),
                exact.l2_mpki(),
                analytic.l2_mpki(),
                MPKI_TOLERANCE_ANALYTIC,
            );
            // The statistical modes must also keep the run's shape sane: the
            // same tasks execute, and instructions are conserved exactly.
            for (label, r) in [("sampled", &sampled), ("analytic", &analytic)] {
                assert_eq!(r.tasks, exact.tasks, "{wspec} × {sched} ({label})");
                assert_eq!(
                    r.instructions, exact.instructions,
                    "{wspec} × {sched} ({label})"
                );
            }
        }
    }
}

#[test]
fn explicit_exact_spec_is_bit_identical_to_the_default() {
    let config = default_config(8).expect("default configuration");
    for wspec in ["mergesort:n=16384", "spmv:rows=1024"] {
        let instance = WorkloadInstance::from_spec(&wspec.parse().unwrap());
        for sched in ["pdf", "ws"] {
            let spec: SchedulerSpec = sched.parse().unwrap();
            let default = simulate(&instance.dag, &config, &spec, &SimOptions::default());
            let exact = simulate(&instance.dag, &config, &spec, &options_for("exact"));
            assert_eq!(exact, default, "{wspec} × {sched}: explicit exact spec");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The sampled contract holds across sizes, core counts, sampling rates
    // and schedulers, not just the hand-picked cells above.
    #[test]
    fn sampled_mpki_contract_holds_across_the_parameter_space(
        n_shift in 12u32..17,
        cores in prop::sample::select(vec![2usize, 4, 8]),
        rate in prop::sample::select(vec![2u64, 4, 8, 16, 32]),
        sched in prop::sample::select(vec!["pdf", "ws", "hybrid"]),
    ) {
        let instance = WorkloadInstance::from_spec(
            &format!("mergesort:n={}", 1u64 << n_shift).parse().unwrap(),
        );
        let config = default_config(cores).expect("default configuration");
        let spec: SchedulerSpec = sched.parse().unwrap();
        let exact = simulate(&instance.dag, &config, &spec, &options_for("exact"));
        let sampled = simulate(
            &instance.dag,
            &config,
            &spec,
            &options_for(&format!("sampled:rate={rate}")),
        );
        let budget = MPKI_TOLERANCE_SAMPLED * exact.l2_mpki() + MPKI_SLACK_ABS;
        prop_assert!(
            (sampled.l2_mpki() - exact.l2_mpki()).abs() <= budget,
            "n=2^{n_shift} cores={cores} rate={rate} {sched}: {:.3} vs {:.3}",
            sampled.l2_mpki(),
            exact.l2_mpki(),
        );
        prop_assert_eq!(sampled.instructions, exact.instructions);
    }
}
