//! A miniature version of the paper's whole evaluation: sweep core counts for one
//! workload from each application class and print how the PDF-vs-WS comparison
//! changes with the class.
//!
//! The workload axis is expressed entirely as **workload spec strings** — the
//! same grammar the bench binaries' `--workload` flag and the job-stream mixes
//! accept — and all four go into one [`SweepGrid`], so every
//! (workload × cores × scheduler) cell runs as one cell of a single sweep on
//! the worker pool, and the output is bit-identical for any thread count.
//!
//! ```text
//! cargo run --release --example scheduler_study
//! PDFWS_THREADS=8 cargo run --release --example scheduler_study   # same output, more workers
//! ```

use pdfws::metrics::{Series, Table};
use pdfws::prelude::*;

fn study(report: &ExperimentReport, class: &str, cores: &[usize]) -> Table {
    let mut table = Table::new(
        format!("{} ({})", report.workload, class),
        "cores",
        cores.iter().map(|c| c.to_string()).collect(),
    );
    for spec in SchedulerSpec::paper_pair() {
        table.push_series(Series::new(
            format!("{spec}_mpki"),
            cores
                .iter()
                .map(|&c| report.find(c, &spec).unwrap().metrics.l2_mpki())
                .collect(),
        ));
        table.push_series(Series::new(
            format!("{spec}_speedup"),
            cores
                .iter()
                .map(|&c| report.speedup(report.find(c, &spec).unwrap()))
                .collect(),
        ));
    }
    table
}

fn main() {
    let cores = [1usize, 4, 16];
    // One representative per class, at example-friendly sizes, each named by
    // its spec string — edit these lines (or pass different strings from your
    // own config) to study any registered workload.
    let workloads = [
        "mergesort:grain=2048,n=65536",          // divide-and-conquer
        "spmv:rows=16384",                       // bandwidth-limited irregular
        "scan:n=262144,grain=8192",              // low data reuse
        "compute-kernel:items=16384,grain=1024", // compute-bound
    ];

    let mut grid = SweepGrid::new()
        .cores(&cores)
        .specs(&SchedulerSpec::paper_pair());
    let mut classes = Vec::new();
    for w in workloads {
        let instance: WorkloadInstance = w.parse().expect("example specs are registered");
        classes.push(instance.class);
        grid = grid.workload(instance);
    }
    let sweep = SweepRunner::from_env()
        .run(&grid)
        .expect("default configurations exist");

    for (class, report) in classes.iter().zip(sweep.reports()) {
        println!("{}", study(report, &class.to_string(), &cores).to_text());
    }
    println!(
        "Reading the tables: for the divide-and-conquer and irregular workloads the ws_mpki\n\
         column grows with the core count while pdf_mpki stays near the sequential value;\n\
         for the low-reuse and compute-bound workloads the two schedulers track each other."
    );
}
