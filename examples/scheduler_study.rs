//! A miniature version of the paper's whole evaluation: sweep core counts for one
//! workload from each application class and print how the PDF-vs-WS comparison
//! changes with the class.
//!
//! All four workloads go into one [`SweepGrid`], so every
//! (workload × cores × scheduler) cell runs as one cell of a single sweep on
//! the worker pool — and the output is bit-identical for any thread count.
//!
//! ```text
//! cargo run --release --example scheduler_study
//! PDFWS_THREADS=8 cargo run --release --example scheduler_study   # same output, more workers
//! ```

use pdfws::metrics::{Series, Table};
use pdfws::prelude::*;
use pdfws::workloads::Workload;

fn study(report: &ExperimentReport, class: &str, cores: &[usize]) -> Table {
    let mut table = Table::new(
        format!("{} ({})", report.workload, class),
        "cores",
        cores.iter().map(|c| c.to_string()).collect(),
    );
    for spec in SchedulerSpec::paper_pair() {
        table.push_series(Series::new(
            format!("{spec}_mpki"),
            cores
                .iter()
                .map(|&c| report.find(c, &spec).unwrap().metrics.l2_mpki())
                .collect(),
        ));
        table.push_series(Series::new(
            format!("{spec}_speedup"),
            cores
                .iter()
                .map(|&c| report.speedup(report.find(c, &spec).unwrap()))
                .collect(),
        ));
    }
    table
}

fn main() {
    let cores = [1usize, 4, 16];
    // One representative per class, at example-friendly sizes.
    let mergesort = MergeSort::new(1 << 16);
    let spmv = SpMv::new(1 << 14);
    let scan = ParallelScan::new(1 << 18);
    let compute = ComputeKernel::new(1 << 14);
    let workloads: Vec<&dyn Workload> = vec![&mergesort, &spmv, &scan, &compute];

    let mut grid = SweepGrid::new()
        .cores(&cores)
        .specs(&SchedulerSpec::paper_pair());
    for w in &workloads {
        grid = grid.workload(WorkloadSpec::from_workload(*w));
    }
    let sweep = SweepRunner::from_env()
        .run(&grid)
        .expect("default configurations exist");

    for (w, report) in workloads.iter().zip(sweep.reports()) {
        println!(
            "{}",
            study(report, &w.class().to_string(), &cores).to_text()
        );
    }
    println!(
        "Reading the tables: for the divide-and-conquer and irregular workloads the ws_mpki\n\
         column grows with the core count while pdf_mpki stays near the sequential value;\n\
         for the low-reuse and compute-bound workloads the two schedulers track each other."
    );
}
