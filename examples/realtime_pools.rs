//! Run the *real-thread* runtimes (not the simulator): sort real data with the
//! work-stealing pool and the PDF pool and compare wall-clock times and runtime
//! statistics on this machine.
//!
//! ```text
//! cargo run --release --example realtime_pools
//! ```

use pdfws::runtime::{PdfPool, WsPool};
use pdfws::workloads::threaded::{parallel_map_reduce, parallel_merge_sort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("running on {threads} hardware thread(s)\n");

    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<u64> = (0..1_000_000).map(|_| rng.gen()).collect();

    // Sequential baseline.
    let mut seq = data.clone();
    let t0 = Instant::now();
    seq.sort_unstable();
    let seq_sort = t0.elapsed();

    let ws = WsPool::new(threads).expect("spawn WS pool");
    let pdf = PdfPool::new(threads).expect("spawn PDF pool");

    let mut ws_data = data.clone();
    let t0 = Instant::now();
    parallel_merge_sort(&ws, &mut ws_data, 8_192);
    let ws_sort = t0.elapsed();
    assert_eq!(ws_data, seq);

    let mut pdf_data = data.clone();
    let t0 = Instant::now();
    parallel_merge_sort(&pdf, &mut pdf_data, 8_192);
    let pdf_sort = t0.elapsed();
    assert_eq!(pdf_data, seq);

    println!("merge sort of 1M u64 keys:");
    println!("  sequential       : {seq_sort:?}");
    println!(
        "  work stealing    : {ws_sort:?}  (steals so far: {})",
        ws.steal_count()
    );
    println!(
        "  parallel depth 1st: {pdf_sort:?}  (jobs executed: {})",
        pdf.executed_jobs()
    );

    let t0 = Instant::now();
    let ws_sum = parallel_map_reduce(&ws, &data, 16_384, &|x| x.rotate_left(7) ^ 0x9E3779B9);
    let ws_mr = t0.elapsed();
    let t0 = Instant::now();
    let pdf_sum = parallel_map_reduce(&pdf, &data, 16_384, &|x| x.rotate_left(7) ^ 0x9E3779B9);
    let pdf_mr = t0.elapsed();
    assert_eq!(ws_sum, pdf_sum);
    println!("\nmap-reduce over 1M u64 keys: ws {ws_mr:?}, pdf {pdf_mr:?} (checksum {ws_sum:#x})");
    println!(
        "\nBoth policies compute identical results; the PDF pool pays a centralized-queue\n\
         overhead per spawn, which is the practical price of sequential-order co-scheduling."
    );
}
