//! Serving a stream of DAG jobs: the paper's schedulers as request servers.
//!
//! The single-job experiments ask "which scheduler finishes one program
//! faster"; a serving system asks "which scheduler keeps p99 latency low while
//! traffic keeps arriving".  This example drives the same seeded stream of
//! mixed-class jobs through PDF and WS twice — once open loop (Poisson
//! arrivals that don't wait for the system) and once closed loop (a fixed
//! client population) — and prints the dashboard numbers, then serves a small
//! closed-loop stream on the *real-thread* pools for comparison.
//!
//! Run with: `cargo run --release --example traffic_serving`

use pdfws::prelude::*;
use pdfws::stream::{run_stream_threads, ThreadStreamConfig};

fn print_summary(label: &str, spec: &SchedulerSpec, s: &StreamSummary) {
    println!(
        "  {label} {spec:>4}: p50 {:>8.1} kcyc  p95 {:>8.1} kcyc  p99 {:>8.1} kcyc  \
         {:.2} jobs/Mcyc  peak-conc {}  mean L2 MPKI {:.3}",
        s.sojourn.p50 / 1e3,
        s.sojourn.p95 / 1e3,
        s.sojourn.p99 / 1e3,
        s.jobs_per_mcycle,
        s.peak_concurrency,
        s.mean_l2_mpki,
    );
}

fn main() {
    let mix = JobMix::mixed();
    println!("mix = {} ({} tenants)\n", mix.name, mix.tenants());

    println!("open loop, Poisson @ 80 jobs/Mcycle, FIFO admission, 8 cores:");
    let open = StreamExperiment::new(mix.clone())
        .jobs(24)
        .cores(8)
        .arrivals(ArrivalProcess::OpenLoopPoisson {
            jobs_per_mcycle: 80.0,
            seed: 7,
        })
        .run()
        .expect("8-core default configuration exists");
    for spec in SchedulerSpec::paper_pair() {
        print_summary("sim", &spec, &open.summary(&spec).expect("scheduler ran"));
    }
    if let Some(ratio) = open.ws_over_pdf_p95() {
        println!("  ws p95 / pdf p95 = {ratio:.3}\n");
    }

    println!("closed loop, 3 clients, 2k-cycle think time, SJF admission:");
    let closed = StreamExperiment::new(mix.clone())
        .jobs(24)
        .cores(8)
        .arrivals(ArrivalProcess::ClosedLoop {
            population: 3,
            think_cycles: 2_000,
        })
        .admission(AdmissionPolicy::ShortestJobFirst)
        .run()
        .expect("8-core default configuration exists");
    for spec in SchedulerSpec::paper_pair() {
        print_summary("sim", &spec, &closed.summary(&spec).expect("scheduler ran"));
    }
    println!();

    println!("real threads, closed loop, 2 clients on 2 workers:");
    for spec in SchedulerSpec::paper_pair() {
        let cfg = ThreadStreamConfig::new(2, spec.clone());
        let outcome = run_stream_threads(&mix, 12, &cfg).expect("pool spawns");
        let q = outcome.sojourn_micros();
        println!(
            "  thread {spec:>4}: p50 {:>8.1} us  p95 {:>8.1} us  p99 {:>8.1} us  {:.0} jobs/s",
            q.p50,
            q.p95,
            q.p99,
            outcome.jobs_per_sec(),
        );
    }
}
