//! Quickstart: simulate parallel merge sort on an 8-core CMP under both
//! schedulers and print the metrics the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdfws::prelude::*;

fn main() {
    // The Figure-1 workload at a small size so this example runs in a second.
    let workload = MergeSort::new(1 << 16).into_spec();

    let report = Experiment::new(workload)
        .cores(8)
        .schedulers(&SchedulerSpec::paper_pair())
        .run()
        .expect("the 8-core default configuration exists");

    println!("parallel merge sort on the default 8-core CMP (240 mm^2 die):\n");
    println!(
        "{:<6} {:>12} {:>16} {:>14} {:>10}",
        "sched", "cycles", "L2 miss/1k instr", "offchip MiB", "speedup"
    );
    for run in report.runs() {
        println!(
            "{:<6} {:>12} {:>16.3} {:>14.2} {:>10.2}",
            run.scheduler.to_string(),
            run.metrics.cycles,
            run.metrics.l2_mpki(),
            run.metrics.offchip_bytes() as f64 / (1024.0 * 1024.0),
            report.speedup(run),
        );
    }

    if let Some(rel) = report.pdf_over_ws_speedup(8) {
        println!(
            "\nPDF is {rel:.2}x {} than WS on this configuration; it moves {:.0}% less data off chip.",
            if rel >= 1.0 { "faster" } else { "slower" },
            report.pdf_traffic_reduction_percent(8).unwrap_or(0.0)
        );
    }
}
