//! Add your own scheduler in ~30 lines.
//!
//! The scheduler API is open: implement [`SchedulerPolicy`] (four required
//! methods), wrap it in a [`PolicyFactory`] that names it and declares its
//! parameters, and `register` it.  From that point `"lifo"` — or
//! `"lifo:your=params"` if you declare any — parses as a [`SchedulerSpec`]
//! everywhere: `Experiment`, `StreamExperiment`, stream configs, bench
//! binaries.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use pdfws::prelude::*;
use pdfws::task_dag::{TaskDag, TaskId};
use std::sync::Arc;

// --- The ~30 lines: a global-LIFO scheduler and its factory ----------------

/// Most-recently-enabled task first, from one shared stack: maximally "hot"
/// tasks, no per-core locality at all.  (A strawman — but a *registerable*
/// strawman.)
struct LifoPolicy {
    name: String,
    stack: Vec<TaskId>,
}

impl SchedulerPolicy for LifoPolicy {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn init(&mut self, _dag: &TaskDag) {
        self.stack.clear();
    }
    fn task_ready(&mut self, task: TaskId, _enabling_core: Option<usize>) {
        self.stack.push(task);
    }
    fn next_task(&mut self, _core: usize) -> Option<TaskId> {
        self.stack.pop()
    }
    fn ready_count(&self) -> usize {
        self.stack.len()
    }
}

struct LifoFactory;

impl PolicyFactory for LifoFactory {
    fn name(&self) -> &'static str {
        "lifo"
    }
    fn doc(&self) -> &'static str {
        "global LIFO stack: most recently enabled task first"
    }
    fn params(&self) -> &'static [ParamSpec] {
        &[] // declare ParamSpec entries here and read them via spec.param()
    }
    fn build(&self, spec: &SchedulerSpec, _cores: usize) -> Box<dyn SchedulerPolicy> {
        Box::new(LifoPolicy {
            name: spec.canonical(),
            stack: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------

fn main() {
    register(Arc::new(LifoFactory));

    // The registry now knows the policy...
    println!("registered policies:\n{}", Registry::global().help());

    // ...and the name parses like any built-in spec.
    let lifo: SchedulerSpec = "lifo".parse().expect("registered name parses");
    let report = Experiment::new(MergeSort::new(1 << 16).into_spec())
        .cores(8)
        .schedulers(&[SchedulerSpec::pdf(), SchedulerSpec::ws(), lifo.clone()])
        .run()
        .expect("the 8-core default configuration exists");

    println!("parallel merge sort, 8 cores, pdf vs ws vs your policy:\n");
    println!(
        "{:<8} {:>12} {:>18} {:>10}",
        "sched", "cycles", "L2 miss/1k instr", "speedup"
    );
    for run in report.runs() {
        println!(
            "{:<8} {:>12} {:>18.3} {:>10.2}",
            run.metrics.scheduler,
            run.metrics.cycles,
            run.metrics.l2_mpki(),
            report.speedup(run),
        );
    }
}
