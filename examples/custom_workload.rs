//! Register your own workload in ~30 lines.
//!
//! The workload API is open, exactly like the scheduler API
//! (`examples/custom_policy.rs`): implement [`Workload`] (four required
//! methods), wrap it in a [`WorkloadFactory`] that names it and declares its
//! typed parameters, and `register_workload` it.  From that point
//! `"stencil"` — or `"stencil:points=8192,iters=4"` — parses as a
//! [`WorkloadSpec`] everywhere: `Experiment::for_spec`, `SweepGrid`,
//! job-stream mixes, and every bench binary's `--workload` flag.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use pdfws::prelude::*;
use pdfws::task_dag::builder::DagBuilder;
use pdfws::task_dag::{AccessPattern, TaskDag};
use pdfws::workloads::layout::AddressSpace;
use std::sync::Arc;

// --- The ~30 lines: a 1D stencil workload and its factory ------------------

/// An iterative 1D three-point stencil: each sweep's chunk tasks read their
/// chunk plus a halo from the previous sweep and write their chunk — nearby
/// chunks share halo data, so the scheduler's co-scheduling choices matter.
struct Stencil {
    points: u64,
    iters: u64,
    grain: u64,
}

impl Workload for Stencil {
    fn name(&self) -> &'static str {
        "stencil"
    }
    fn class(&self) -> WorkloadClass {
        WorkloadClass::BandwidthLimitedIrregular
    }
    fn build_dag(&self) -> TaskDag {
        let mut space = AddressSpace::new();
        let field = space.alloc(self.points * 8);
        let mut b = DagBuilder::new();
        let mut prev = b.task("stencil-init").instructions(50).build();
        for it in 0..self.iters {
            let join = b
                .task(&format!("sweep-join[{it}]"))
                .instructions(20)
                .build();
            for c in 0..self.points.div_ceil(self.grain) {
                let first = c * self.grain;
                let count = self.grain.min(self.points - first);
                let lo = first.saturating_sub(1);
                let hi = (first + count + 1).min(self.points);
                let halo = field.slice(lo, hi - lo, 8);
                let out = field.slice(first, count, 8);
                let t = b
                    .task(&format!("sweep[{it}][{c}]"))
                    .instructions(count * 5)
                    .access(AccessPattern::range_read(halo.base, halo.len))
                    .access(AccessPattern::range_write(out.base, out.len))
                    .build();
                b.edge(prev, t);
                b.edge(t, join);
            }
            prev = join;
        }
        b.finish().expect("stencil DAG is valid by construction")
    }
    fn data_bytes(&self) -> u64 {
        self.points * 8
    }
    fn spec(&self) -> WorkloadSpec {
        // Report only non-default parameters, like the built-in workloads do.
        let mut s = WorkloadSpec::unregistered("stencil");
        for (key, value, default) in [
            ("points", self.points, 4096),
            ("iters", self.iters, 2),
            ("grain", self.grain, 256),
        ] {
            if value != default {
                s = s
                    .with_param(key, &value.to_string())
                    .expect("stencil params are declared");
            }
        }
        s
    }
}

struct StencilFactory;

impl WorkloadFactory for StencilFactory {
    fn name(&self) -> &'static str {
        "stencil"
    }
    fn doc(&self) -> &'static str {
        "iterative 1D three-point stencil (registered by custom_workload example)"
    }
    fn params(&self) -> &'static [ParamSpec] {
        use pdfws::prelude::ParamKind;
        &[
            ParamSpec {
                key: "points",
                kind: ParamKind::U64,
                doc: "field points (default 4096)",
            },
            ParamSpec {
                key: "iters",
                kind: ParamKind::U64,
                doc: "stencil sweeps (default 2)",
            },
            ParamSpec {
                key: "grain",
                kind: ParamKind::U64,
                doc: "points per task (default 256)",
            },
        ]
    }
    fn build(&self, spec: &WorkloadSpec) -> Box<dyn Workload> {
        Box::new(Stencil {
            points: spec.u64_param("points", 4096),
            iters: spec.u64_param("iters", 2),
            grain: spec.u64_param("grain", 256),
        })
    }
}

// ---------------------------------------------------------------------------

fn main() {
    register_workload(Arc::new(StencilFactory));

    // The registry now knows the workload...
    println!(
        "registered workloads:\n{}",
        WorkloadRegistry::global().help()
    );

    // ...and its name parses like any built-in spec, with typed errors:
    let err = "stencil:points=many".parse::<WorkloadSpec>().unwrap_err();
    println!("typed parameters come for free: {err}\n");

    let report = Experiment::for_spec("stencil:points=16384,iters=4")
        .expect("the stencil spec parses")
        .cores(8)
        .schedulers(&SchedulerSpec::paper_pair())
        .run()
        .expect("the 8-core default configuration exists");

    println!("{} on 8 cores, pdf vs ws:\n", report.workload);
    println!(
        "{:<6} {:>12} {:>18} {:>10}",
        "sched", "cycles", "L2 miss/1k instr", "speedup"
    );
    for run in report.runs() {
        println!(
            "{:<6} {:>12} {:>18.3} {:>10.2}",
            run.metrics.scheduler,
            run.metrics.cycles,
            run.metrics.l2_mpki(),
            report.speedup(run),
        );
    }

    // The spec round-trips through the instance that ran.
    let again: WorkloadSpec = report.workload.parse().expect("report spec re-parses");
    assert_eq!(again.canonical(), report.workload);
}
